#pragma once
// Pipeline accounting and the thin obs:: bridge.
//
// PipelineStats is always collected (it is how the CLI and the
// pipeline_throughput bench report stage balance); the detail::
// helpers additionally mirror the numbers into the globally installed
// obs::MetricsRegistry when one exists, costing one branch when
// tracing is off — the same contract as every other instrumented
// subsystem.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace repute::pipeline {

struct PipelineStats {
    std::size_t units = 0;       ///< batches emitted by the writer
    std::size_t map_workers = 0;
    std::size_t queue_depth = 0;
    /// Peak batches resident anywhere in the pipeline (queues, map
    /// stage, reorder buffer) — the memory-bound witness.
    std::size_t max_in_flight = 0;
    /// Peak batches parked in the writer's ordering buffer.
    std::size_t max_reorder_depth = 0;
    /// Host seconds each stage spent doing work...
    double reader_seconds = 0.0;
    double map_seconds = 0.0; ///< summed across workers
    double writer_seconds = 0.0;
    /// ...and blocked on its neighbours (full/empty queues).
    double reader_stall_seconds = 0.0;
    double map_stall_seconds = 0.0;
    double writer_stall_seconds = 0.0;
    double wall_seconds = 0.0;

    /// Multi-line human-readable stage breakdown.
    std::string format() const;
};

/// Tracks how many units are resident in the pipeline and the peak.
class InFlightGauge {
public:
    void enter() noexcept {
        const auto now =
            count_.fetch_add(1, std::memory_order_relaxed) + 1;
        auto peak = peak_.load(std::memory_order_relaxed);
        while (now > peak &&
               !peak_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
        }
    }
    void leave() noexcept {
        count_.fetch_sub(1, std::memory_order_relaxed);
    }
    double current() const noexcept {
        return static_cast<double>(count_.load(std::memory_order_relaxed));
    }
    std::size_t peak() const noexcept {
        return peak_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::size_t> count_{0};
    std::atomic<std::size_t> peak_{0};
};

namespace detail {

/// No-ops (one relaxed load + branch) when no registry is installed.
void gauge_set(const char* name, double value);
void counter_add(const char* name, std::uint64_t delta);
void hist_observe(const char* name, double value);

} // namespace detail

} // namespace repute::pipeline
