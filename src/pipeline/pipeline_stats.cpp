#include "pipeline/pipeline_stats.hpp"

#include <cstdio>

#include "obs/trace.hpp"

namespace repute::pipeline {

std::string PipelineStats::format() const {
    char line[160];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "pipeline: %zu batches, %zu map worker(s), queue depth "
                  "%zu, peak in flight %zu (reorder %zu), wall %.3fs\n",
                  units, map_workers, queue_depth, max_in_flight,
                  max_reorder_depth, wall_seconds);
    out += line;
    const auto stage = [&](const char* name, double busy, double stall) {
        std::snprintf(line, sizeof(line),
                      "  %-7s busy %8.3fs   stalled %8.3fs\n", name, busy,
                      stall);
        out += line;
    };
    stage("reader", reader_seconds, reader_stall_seconds);
    stage("map", map_seconds, map_stall_seconds);
    stage("writer", writer_seconds, writer_stall_seconds);
    return out;
}

namespace detail {

void gauge_set(const char* name, double value) {
    if (auto* registry = obs::metrics()) {
        registry->gauge(name).set(value);
    }
}

void counter_add(const char* name, std::uint64_t delta) {
    if (auto* registry = obs::metrics()) {
        registry->counter(name).add(delta);
    }
}

void hist_observe(const char* name, double value) {
    if (auto* registry = obs::metrics()) {
        registry->histogram(name).observe(value);
    }
}

} // namespace detail

} // namespace repute::pipeline
