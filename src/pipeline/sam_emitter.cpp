#include "pipeline/sam_emitter.hpp"

#include <ostream>

#include "core/cigar.hpp"

namespace repute::pipeline {

SamEmitter::SamEmitter(std::ostream& out,
                       const genomics::MultiReference& multi,
                       SamEmitterConfig config)
    : out_(&out), multi_(&multi), config_(config) {}

void SamEmitter::write_header() {
    *out_ << "@HD\tVN:1.6\tSO:unknown\n";
    for (std::size_t s = 0; s < multi_->sequence_count(); ++s) {
        *out_ << "@SQ\tSN:" << multi_->sequence_name(s)
              << "\tLN:" << multi_->sequence_length(s) << '\n';
    }
    *out_ << "@PG\tID:repute\tPN:repute\tVN:1.0.0\n";
}

void SamEmitter::write_record(const genomics::SamRecord& rec) {
    *out_ << rec.qname << '\t' << rec.flag << '\t'
          << (rec.unmapped() ? "*" : rec.rname) << '\t' << rec.pos << '\t'
          << static_cast<unsigned>(rec.mapq) << '\t' << rec.cigar << '\t'
          << rec.rnext << '\t' << rec.pnext << '\t' << rec.tlen << '\t'
          << rec.seq << "\t*\tNM:i:" << rec.edit_distance << '\n';
    ++stats_.records;
}

void SamEmitter::emit(const genomics::ReadBatch& batch,
                      const core::MapResult& result) {
    const auto& reference = multi_->concatenated();
    const auto read_len = static_cast<std::uint32_t>(batch.read_length);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        std::size_t emitted = 0;
        bool first = true;
        for (const auto& m : result.per_read[i]) {
            if (!multi_->within_one_sequence(m.position, read_len)) {
                ++stats_.dropped_boundary;
                continue;
            }
            genomics::SamRecord rec;
            rec.qname = batch.reads[i].name;
            rec.seq = batch.reads[i].to_string();
            rec.edit_distance = m.edit_distance;
            if (m.strand == genomics::Strand::Reverse) {
                rec.flag |= genomics::SamRecord::kFlagReverse;
            }
            if (!first) rec.flag |= genomics::SamRecord::kFlagSecondary;
            std::uint32_t global_pos = m.position;
            if (config_.cigar) {
                const auto annotated = core::annotate_mapping(
                    reference, batch.reads[i], m, config_.delta);
                if (!annotated.has_value()) {
                    ++stats_.dropped_cigar;
                    continue;
                }
                rec.cigar = annotated->cigar;
                rec.edit_distance = annotated->mapping.edit_distance;
                global_pos = annotated->precise_position;
            }
            const auto loc = multi_->resolve(global_pos);
            rec.rname = multi_->sequence_name(loc.sequence_index);
            rec.pos = loc.offset + 1;
            write_record(rec);
            first = false;
            ++emitted;
        }
        if (emitted == 0) {
            genomics::SamRecord rec;
            rec.qname = batch.reads[i].name;
            rec.flag = genomics::SamRecord::kFlagUnmapped;
            rec.rname = "*";
            write_record(rec);
        }
        ++stats_.reads;
    }
}

void SamEmitter::emit_paired(const genomics::ReadBatch& first,
                             const genomics::ReadBatch& second,
                             const core::PairedResult& result) {
    const auto read_len = static_cast<std::uint32_t>(first.read_length);
    auto records = core::paired_to_sam(
        first, second, result, multi_->concatenated().name());
    for (auto& rec : records) {
        if (!rec.unmapped()) {
            // paired_to_sam reports concatenated-text coordinates;
            // resolve to the source sequence or demote to unmapped when
            // the placement straddles a boundary.
            if (!multi_->within_one_sequence(rec.pos - 1, read_len)) {
                ++stats_.dropped_boundary;
                rec.flag |= genomics::SamRecord::kFlagUnmapped;
                rec.flag &= static_cast<std::uint16_t>(
                    ~genomics::SamRecord::kFlagProperPair);
                rec.pos = 0;
                rec.cigar = "*";
                rec.tlen = 0;
            } else {
                const auto loc = multi_->resolve(rec.pos - 1);
                rec.rname = multi_->sequence_name(loc.sequence_index);
                rec.pos = loc.offset + 1;
            }
        }
        if (rec.pnext != 0) {
            if (multi_->within_one_sequence(rec.pnext - 1, read_len)) {
                rec.pnext = multi_->resolve(rec.pnext - 1).offset + 1;
            } else {
                rec.rnext = "*";
                rec.pnext = 0;
                rec.tlen = 0;
            }
        }
        write_record(rec);
        ++stats_.reads;
    }
}

} // namespace repute::pipeline
