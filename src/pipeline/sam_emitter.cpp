#include "pipeline/sam_emitter.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/cigar.hpp"

namespace repute::pipeline {

SamEmitter::SamEmitter(std::ostream& out,
                       const genomics::MultiReference& multi,
                       SamEmitterConfig config)
    : out_(&out), multi_(&multi), config_(config) {}

void SamEmitter::write_header() {
    *out_ << "@HD\tVN:1.6\tSO:unknown\n";
    for (std::size_t s = 0; s < multi_->sequence_count(); ++s) {
        *out_ << "@SQ\tSN:" << multi_->sequence_name(s)
              << "\tLN:" << multi_->sequence_length(s) << '\n';
    }
    *out_ << "@PG\tID:repute\tPN:repute\tVN:1.0.0\n";
}

void SamEmitter::write_record(std::ostream& out,
                              const genomics::SamRecord& rec) {
    out << rec.qname << '\t' << rec.flag << '\t'
        << (rec.unmapped() ? "*" : rec.rname) << '\t' << rec.pos << '\t'
        << static_cast<unsigned>(rec.mapq) << '\t' << rec.cigar << '\t'
        << rec.rnext << '\t' << rec.pnext << '\t' << rec.tlen << '\t'
        << rec.seq << "\t*\tNM:i:" << rec.edit_distance << '\n';
    ++stats_.records;
}

void SamEmitter::emit_read(std::ostream& out,
                           const genomics::ReadBatch& batch,
                           std::size_t index,
                           const core::MapResult& result) {
    const auto& reference = multi_->concatenated();
    const auto& read = batch.reads[index];
    // The read's own length, not batch.read_length: bucketed batches
    // carry the class ceiling there (virtual padding), and boundary
    // checks must see the true footprint.
    const auto read_len = static_cast<std::uint32_t>(read.length());
    std::size_t emitted = 0;
    bool first = true;
    for (const auto& m : result.per_read[index]) {
        if (!multi_->within_one_sequence(m.position, read_len)) {
            ++stats_.dropped_boundary;
            continue;
        }
        genomics::SamRecord rec;
        rec.qname = read.name;
        rec.seq = read.to_string();
        rec.edit_distance = m.edit_distance;
        if (m.strand == genomics::Strand::Reverse) {
            rec.flag |= genomics::SamRecord::kFlagReverse;
        }
        if (!first) rec.flag |= genomics::SamRecord::kFlagSecondary;
        std::uint32_t global_pos = m.position;
        if (config_.cigar) {
            const auto annotated = core::annotate_mapping(
                reference, read, m, config_.delta);
            if (!annotated.has_value()) {
                ++stats_.dropped_cigar;
                continue;
            }
            rec.cigar = annotated->cigar;
            rec.edit_distance = annotated->mapping.edit_distance;
            global_pos = annotated->precise_position;
        }
        const auto loc = multi_->resolve(global_pos);
        rec.rname = multi_->sequence_name(loc.sequence_index);
        rec.pos = loc.offset + 1;
        write_record(out, rec);
        first = false;
        ++emitted;
    }
    if (emitted == 0) {
        genomics::SamRecord rec;
        rec.qname = read.name;
        rec.flag = genomics::SamRecord::kFlagUnmapped;
        rec.rname = "*";
        write_record(out, rec);
    }
    ++stats_.reads;
}

void SamEmitter::emit(const genomics::ReadBatch& batch,
                      const core::MapResult& result) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
        emit_read(*out_, batch, i, result);
    }
}

std::string SamEmitter::render_read(const genomics::ReadBatch& batch,
                                    std::size_t index,
                                    const core::MapResult& result) {
    std::ostringstream buf;
    emit_read(buf, batch, index, result);
    return std::move(buf).str();
}

void SamEmitter::finalize_pair_record(std::ostream& out,
                                      genomics::SamRecord& rec,
                                      std::uint32_t own_len,
                                      std::uint32_t mate_len) {
    if (!rec.unmapped()) {
        // paired_to_sam reports concatenated-text coordinates; resolve
        // to the source sequence or demote to unmapped when the
        // placement straddles a boundary.
        if (!multi_->within_one_sequence(rec.pos - 1, own_len)) {
            ++stats_.dropped_boundary;
            rec.flag |= genomics::SamRecord::kFlagUnmapped;
            rec.flag &= static_cast<std::uint16_t>(
                ~genomics::SamRecord::kFlagProperPair);
            rec.pos = 0;
            rec.cigar = "*";
            rec.tlen = 0;
        } else {
            const auto loc = multi_->resolve(rec.pos - 1);
            rec.rname = multi_->sequence_name(loc.sequence_index);
            rec.pos = loc.offset + 1;
        }
    }
    if (rec.pnext != 0) {
        if (multi_->within_one_sequence(rec.pnext - 1, mate_len)) {
            rec.pnext = multi_->resolve(rec.pnext - 1).offset + 1;
        } else {
            rec.rnext = "*";
            rec.pnext = 0;
            rec.tlen = 0;
        }
    }
    write_record(out, rec);
    ++stats_.reads;
}

void SamEmitter::emit_paired(const genomics::ReadBatch& first,
                             const genomics::ReadBatch& second,
                             const core::PairedResult& result) {
    auto records = core::paired_to_sam(
        first, second, result, multi_->concatenated().name());
    // records[2i] / records[2i+1] are pair i's first/second mate; each
    // record's own placement is checked against its own read length and
    // its PNEXT against the mate's.
    for (std::size_t i = 0; i * 2 + 1 < records.size(); ++i) {
        const auto len1 =
            static_cast<std::uint32_t>(first.reads[i].length());
        const auto len2 =
            static_cast<std::uint32_t>(second.reads[i].length());
        finalize_pair_record(*out_, records[2 * i], len1, len2);
        finalize_pair_record(*out_, records[2 * i + 1], len2, len1);
    }
}

std::vector<std::string> SamEmitter::render_paired(
    const genomics::ReadBatch& first, const genomics::ReadBatch& second,
    const core::PairedResult& result) {
    auto records = core::paired_to_sam(
        first, second, result, multi_->concatenated().name());
    std::vector<std::string> out;
    out.reserve(records.size() / 2);
    for (std::size_t i = 0; i * 2 + 1 < records.size(); ++i) {
        const auto len1 =
            static_cast<std::uint32_t>(first.reads[i].length());
        const auto len2 =
            static_cast<std::uint32_t>(second.reads[i].length());
        std::ostringstream buf;
        finalize_pair_record(buf, records[2 * i], len1, len2);
        finalize_pair_record(buf, records[2 * i + 1], len2, len1);
        out.push_back(std::move(buf).str());
    }
    return out;
}

void RecordReorderWriter::add(std::uint64_t ordinal, std::string bytes) {
    parked_.emplace(ordinal, std::move(bytes));
    if (parked_.size() > max_parked_) max_parked_ = parked_.size();
    while (!parked_.empty() && parked_.begin()->first == next_) {
        *out_ << parked_.begin()->second;
        parked_.erase(parked_.begin());
        ++next_;
    }
}

void RecordReorderWriter::finish() {
    if (!parked_.empty()) {
        throw std::logic_error(
            "RecordReorderWriter: " + std::to_string(parked_.size()) +
            " record(s) still parked at finish (ordinal gap at " +
            std::to_string(next_) + ")");
    }
}

} // namespace repute::pipeline
