#include "pipeline/mapping_pipeline.hpp"

#include <stdexcept>

namespace repute::pipeline {

PipelineStats run_mapping_pipeline(StreamingFastxReader& reader,
                                   std::span<core::Mapper* const> mappers,
                                   std::uint32_t delta,
                                   const BatchSink& sink,
                                   PipelineConfig config) {
    if (mappers.empty()) {
        throw std::invalid_argument("run_mapping_pipeline: no mappers");
    }
    config.map_workers = mappers.size();
    BatchPipeline<genomics::ReadBatch, core::MapResult> engine(config);
    return engine.run(
        [&](genomics::ReadBatch& batch) {
            return reader.next_batch(batch);
        },
        [&](const genomics::ReadBatch& batch, std::size_t worker) {
            return mappers[worker]->map(batch, delta);
        },
        [&](std::size_t seq, const genomics::ReadBatch& batch,
            const core::MapResult& result) { sink(seq, batch, result); });
}

PipelineStats run_paired_pipeline(
    StreamingFastxReader& reader1, StreamingFastxReader& reader2,
    std::span<core::PairedMapper* const> mappers, std::uint32_t delta,
    const PairedSink& sink, PipelineConfig config) {
    if (mappers.empty()) {
        throw std::invalid_argument("run_paired_pipeline: no mappers");
    }
    config.map_workers = mappers.size();
    BatchPipeline<PairedUnit, core::PairedResult> engine(config);
    return engine.run(
        [&](PairedUnit& unit) {
            const bool more1 = reader1.next_batch(unit.first);
            const bool more2 = reader2.next_batch(unit.second);
            if (more1 != more2 ||
                unit.first.size() != unit.second.size()) {
                throw std::runtime_error(
                    "paired inputs desynchronized: mate files yield "
                    "different record counts");
            }
            return more1;
        },
        [&](const PairedUnit& unit, std::size_t worker) {
            return mappers[worker]->map_pairs(unit.first, unit.second,
                                              delta);
        },
        [&](std::size_t seq, const PairedUnit& unit,
            const core::PairedResult& result) { sink(seq, unit, result); });
}

PipelineStats run_bucketed_pipeline(
    StreamingFastxReader& reader, std::span<core::Mapper* const> mappers,
    std::uint32_t delta, const OrderedBatchSink& sink,
    PipelineConfig config) {
    if (mappers.empty()) {
        throw std::invalid_argument("run_bucketed_pipeline: no mappers");
    }
    config.map_workers = mappers.size();
    BatchPipeline<OrderedBatch, core::MapResult> engine(config);
    return engine.run(
        [&](OrderedBatch& unit) { return reader.next_bucket(unit); },
        [&](const OrderedBatch& unit, std::size_t worker) {
            return mappers[worker]->map(unit.batch, delta);
        },
        [&](std::size_t seq, const OrderedBatch& unit,
            const core::MapResult& result) { sink(seq, unit, result); });
}

PipelineStats run_bucketed_paired_pipeline(
    PairedStreamingReader& reader,
    std::span<core::PairedMapper* const> mappers, std::uint32_t delta,
    const OrderedPairSink& sink, PipelineConfig config) {
    if (mappers.empty()) {
        throw std::invalid_argument(
            "run_bucketed_paired_pipeline: no mappers");
    }
    config.map_workers = mappers.size();
    BatchPipeline<OrderedPairBatch, core::PairedResult> engine(config);
    return engine.run(
        [&](OrderedPairBatch& unit) { return reader.next_bucket(unit); },
        [&](const OrderedPairBatch& unit, std::size_t worker) {
            return mappers[worker]->map_pairs(unit.first, unit.second,
                                              delta);
        },
        [&](std::size_t seq, const OrderedPairBatch& unit,
            const core::PairedResult& result) {
            sink(seq, unit, result);
        });
}

} // namespace repute::pipeline
