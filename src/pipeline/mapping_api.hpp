#pragma once
// The unified mapping API — one session, many requests.
//
// MappingSession is the public construction path for the whole tool: it
// owns an index (built in-process from FASTA, mmap'd zero-copy from a
// .rix container, or adopted from an in-memory MultiReference), a device
// platform and a pool of mappers, and serves MapRequests — FASTQ/FASTA
// payload streams in, SAM bytes out — through one code path shared by
// the one-shot CLI (`repute map`), the daemon (`repute serve`), the
// benches and the tests. run_mapping_pipeline/run_paired_pipeline remain
// as the internal engine underneath; constructing mappers by hand via
// make_repute/make_coral is for code that needs to bypass the session
// (kernel benches, device-level tests).
//
// Concurrency: map() is safe to call from many threads at once — that is
// the daemon's request path. The mapper pool is the parallelism ceiling;
// each request asks for `map_workers` mappers and is granted a
// fair-share slice, min(want, available, pool/active_requests), blocking
// only until at least one mapper is free. A single-request caller with
// want == pool gets every mapper; N concurrent requests converge on
// pool/N each — no request starves and no mapper idles while work waits.

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/paired.hpp"
#include "core/repute_mapper.hpp"
#include "core/sharded_mapper.hpp"
#include "genomics/multi_reference.hpp"
#include "index/fm_index.hpp"
#include "index/rix.hpp"
#include "index/rixm.hpp"
#include "ocl/platform.hpp"
#include "pipeline/mapping_pipeline.hpp"
#include "pipeline/sam_emitter.hpp"
#include "pipeline/streaming_fastx.hpp"

namespace repute::pipeline {

/// Session-level knobs: everything that shapes the mappers and the
/// index, fixed for the session's lifetime. Per-request knobs (delta,
/// batching, pairing) live on MapRequest.
struct SessionConfig {
    /// "repute" (DP seeder, the paper's tool) or "coral" (heuristic
    /// seeder baseline).
    std::string flavor = "repute";
    std::uint32_t s_min = 14;
    std::uint32_t max_locations = 100;
    bool simd_verification = true;
    core::ScheduleMode schedule = core::ScheduleMode::StaticSplit;
    core::SchedulerConfig scheduler;
    std::string platform = "system1";
    std::vector<std::string> devices{"i7-2600"};
    /// Host<->device link model applied to every selected device when
    /// modeled (bandwidth + latency; see ocl::TransferSpec). The default
    /// leaves transfers unmodeled — staging is accounted in bytes but
    /// costs no modeled time.
    ocl::TransferSpec transfer;
    /// Stage chunk k+1 while chunk k executes (double-buffered staging).
    /// Only affects devices with a modeled TransferSpec; output is
    /// byte-identical either way.
    bool double_buffer = true;
    /// Mapper pool size = the max concurrent map workers across all
    /// requests (the daemon's parallelism ceiling).
    std::size_t mapper_pool = 1;
    /// Index-build knobs (from_fasta / from_multi only; a .rix file
    /// fixes them at `repute index build` time).
    std::uint32_t sa_sample = 4;
    std::uint32_t checkpoint_every = 128;
    std::uint32_t qgram_length = index::FmIndex::kDefaultQgramLength;
};

/// One mapping request: a payload stream (plus optional mates), the
/// per-request config, and an output stream for the SAM bytes.
struct MapRequest {
    std::istream* reads = nullptr;  ///< FASTQ/FASTA payload (required)
    std::istream* reads2 = nullptr; ///< second mates -> paired-end
    std::uint32_t delta = 5;
    bool cigar = true;
    /// Parse-everything-then-map reference path (no streaming overlap);
    /// single-end only.
    bool monolithic = false;
    /// Mappers wanted; the grant is fair-share clamped (see above).
    std::size_t map_workers = 1;
    std::size_t queue_depth = 4;
    StreamingReaderConfig reader;
    core::PairedConfig pair;
    /// Metrics label: requests carrying a tenant increment
    /// `serve.tenant.<tenant>.requests` / `.reads` counters.
    std::string tenant;
};

struct MapResponse {
    PipelineStats pipeline; ///< zeroed for monolithic requests
    SamEmitter::Stats emitted;
    std::size_t reads_in = 0;
    std::size_t dropped = 0;
    std::size_t workers_granted = 0;
    double wall_seconds = 0.0;
    /// Host<->device traffic this request staged/drained (single-end and
    /// monolithic paths; paired requests leave them 0). Counted even
    /// when transfers are unmodeled.
    std::uint64_t xfer_bytes_staged = 0;
    std::uint64_t xfer_bytes_drained = 0;
};

class MappingSession {
public:
    /// Builds reference + index in-process from a (multi-sequence)
    /// FASTA file.
    static std::unique_ptr<MappingSession> from_fasta(
        const std::string& fasta_path, SessionConfig config = {});

    /// Maps a prebuilt index zero-copy: a .rix container (index/rix.hpp)
    /// or a .rixm shard manifest (index/rixm.hpp) — dispatched by file
    /// magic, so callers pass either path through the same flag. A
    /// manifest mmaps every shard and builds sharded mappers whose
    /// per-device peak residency is one shard image, not the whole
    /// index.
    static std::unique_ptr<MappingSession> from_rix(
        const std::string& rix_path, SessionConfig config = {});

    /// Adopts an in-memory reference set and builds its index — the
    /// bench/test fixture path.
    static std::unique_ptr<MappingSession> from_multi(
        genomics::MultiReference multi, SessionConfig config = {});

    MappingSession(const MappingSession&) = delete;
    MappingSession& operator=(const MappingSession&) = delete;

    /// Maps one request, streaming SAM into `sam_out` (header included).
    /// Thread-safe; blocks while the mapper pool is exhausted. Throws on
    /// malformed input under OnMalformed::Fail and on I/O errors; the
    /// granted mappers are released either way.
    MapResponse map(const MapRequest& request, std::ostream& sam_out);

    const genomics::MultiReference& multi() const noexcept {
        return *multi_;
    }
    /// The monolithic FM-index. Throws std::logic_error for sharded
    /// sessions — there is no single index; use sharded().
    const index::FmIndex& fm() const;
    const SessionConfig& config() const noexcept { return config_; }

    /// True when the index is a zero-copy view over .rix mapping(s)
    /// (monolithic container or shard set).
    bool is_mapped() const noexcept {
        return mapped_.has_value() || sharded_.has_value();
    }

    /// True when the session maps through a .rixm shard set.
    bool is_sharded() const noexcept { return sharded_.has_value(); }
    /// The shard set (only when is_sharded()).
    const index::ShardedIndex& sharded() const { return *sharded_; }

    /// Footprint split (exported as index.mapped_bytes /
    /// index.resident_bytes gauges when a metrics registry is
    /// installed): mapped = demand-paged file bytes, resident = private
    /// heap (whole index when built in-process).
    std::size_t mapped_bytes() const noexcept;
    std::size_t resident_bytes() const noexcept;

    /// Seconds the index source took (build or mmap+checksum) — the
    /// load-speedup bench reads this.
    double index_seconds() const noexcept { return index_seconds_; }

private:
    MappingSession() = default;

    void build_pool();
    void export_footprint_metrics() const;

    std::vector<core::Mapper*> acquire(std::size_t want);
    void release(const std::vector<core::Mapper*>& granted);

    SessionConfig config_;
    std::optional<index::MappedIndex> mapped_;
    std::optional<index::ShardedIndex> sharded_;
    std::optional<genomics::MultiReference> owned_multi_;
    std::optional<index::FmIndex> owned_fm_;
    const genomics::MultiReference* multi_ = nullptr;
    const index::FmIndex* fm_ = nullptr;
    double index_seconds_ = 0.0;

    std::optional<ocl::Platform> platform_;
    std::vector<std::unique_ptr<core::Mapper>> pool_;
    std::mutex pool_mutex_;
    std::condition_variable pool_cv_;
    std::vector<core::Mapper*> free_;
    std::size_t active_requests_ = 0;
};

} // namespace repute::pipeline
