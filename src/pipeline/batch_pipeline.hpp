#pragma once
// Bounded, ordered, streaming batch pipeline.
//
// Three stages connected by bounded queues:
//
//   reader thread --in queue--> map workers --out queue--> writer thread
//
// The reader pulls units (read batches) from a source callback, the map
// workers transform them (heterogeneous mapping), and the writer emits
// results through a sink callback *in input order* — an ordering buffer
// in the writer holds early-finishing units until their turn, so output
// is deterministic even when a skewed device fleet completes batches
// out of order. Bounded queues give backpressure in both directions:
// the reader can run at most queue_depth batches ahead (batch i+1
// parses while batch i maps — the double buffer generalized), and a
// slow writer pauses mapping rather than letting results pile up. Peak
// pipeline memory is therefore O(queue_depth x batch size), not file
// size.
//
// The template is unit-agnostic so single-end batches (ReadBatch ->
// MapResult) and paired lockstep batches share one engine; see
// mapping_pipeline.hpp for the concrete mapping front-ends.
//
// Error handling: the first exception thrown by any stage closes both
// queues, drains the pipeline, and is rethrown from run() on the
// calling thread.

#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "pipeline/bounded_queue.hpp"
#include "pipeline/pipeline_stats.hpp"
#include "util/timer.hpp"

namespace repute::pipeline {

struct PipelineConfig {
    /// Capacity, in batches, of each inter-stage queue (clamped >= 1).
    std::size_t queue_depth = 4;
    /// Concurrent map-stage workers; worker w receives index w in the
    /// map callback so each can own its mapper instance.
    std::size_t map_workers = 1;
};

template <typename Unit, typename Result>
class BatchPipeline {
public:
    /// Fills `unit` with the next input; false when exhausted.
    using Source = std::function<bool(Unit& unit)>;
    /// Transforms one unit on map worker `worker`.
    using MapFn = std::function<Result(const Unit& unit,
                                       std::size_t worker)>;
    /// Receives (sequence number, unit, result) strictly in input order.
    using Sink = std::function<void(std::size_t seq, const Unit& unit,
                                    const Result& result)>;

    explicit BatchPipeline(PipelineConfig config) : config_(config) {
        if (config_.queue_depth == 0) config_.queue_depth = 1;
        if (config_.map_workers == 0) config_.map_workers = 1;
    }

    /// Runs the pipeline to completion (or first error) and returns the
    /// per-stage accounting.
    PipelineStats run(const Source& source, const MapFn& map,
                      const Sink& sink) {
        struct Mapped {
            Unit unit;
            Result result;
        };
        BoundedQueue<std::pair<std::size_t, Unit>> in(config_.queue_depth);
        BoundedQueue<std::pair<std::size_t, Mapped>> out(
            config_.queue_depth);

        PipelineStats stats;
        stats.map_workers = config_.map_workers;
        stats.queue_depth = config_.queue_depth;
        std::mutex stats_mutex;
        std::exception_ptr first_error;
        std::mutex error_mutex;
        InFlightGauge in_flight;

        auto capture = [&](std::exception_ptr error) {
            const std::lock_guard lock(error_mutex);
            if (!first_error) first_error = std::move(error);
        };

        const util::Stopwatch wall;

        std::thread reader([&] {
            try {
                std::size_t seq = 0;
                util::Stopwatch busy;
                for (;;) {
                    busy.reset();
                    Unit unit;
                    const bool more = source(unit);
                    {
                        const std::lock_guard lock(stats_mutex);
                        stats.reader_seconds += busy.seconds();
                    }
                    if (!more) break;
                    in_flight.enter();
                    detail::gauge_set("pipeline.batches_in_flight",
                                      in_flight.current());
                    if (!in.push({seq, std::move(unit)})) {
                        in_flight.leave();
                        break; // closed by an error elsewhere
                    }
                    detail::gauge_set("pipeline.input_queue_depth",
                                      static_cast<double>(in.depth()));
                    ++seq;
                }
            } catch (...) {
                capture(std::current_exception());
            }
            in.close();
        });

        std::vector<std::thread> workers;
        workers.reserve(config_.map_workers);
        std::mutex workers_open_mutex;
        std::size_t workers_open = config_.map_workers;
        for (std::size_t w = 0; w < config_.map_workers; ++w) {
            workers.emplace_back([&, w] {
                try {
                    util::Stopwatch busy;
                    while (auto item = in.pop()) {
                        busy.reset();
                        Mapped mapped{std::move(item->second), Result{}};
                        mapped.result = map(mapped.unit, w);
                        const double seconds = busy.seconds();
                        {
                            const std::lock_guard lock(stats_mutex);
                            stats.map_seconds += seconds;
                        }
                        detail::hist_observe("pipeline.batch_map_seconds",
                                             seconds);
                        if (!out.push({item->first, std::move(mapped)})) {
                            break;
                        }
                        detail::gauge_set(
                            "pipeline.output_queue_depth",
                            static_cast<double>(out.depth()));
                    }
                } catch (...) {
                    capture(std::current_exception());
                    in.close(); // stop the reader feeding a dead stage
                }
                const std::lock_guard lock(workers_open_mutex);
                if (--workers_open == 0) out.close();
            });
        }

        std::thread writer([&] {
            try {
                std::map<std::size_t, Mapped> reorder;
                std::size_t expected = 0;
                util::Stopwatch busy;
                while (auto item = out.pop()) {
                    reorder.emplace(item->first, std::move(item->second));
                    while (true) {
                        const auto ready = reorder.find(expected);
                        if (ready == reorder.end()) break;
                        busy.reset();
                        sink(expected, ready->second.unit,
                             ready->second.result);
                        {
                            const std::lock_guard lock(stats_mutex);
                            stats.writer_seconds += busy.seconds();
                            ++stats.units;
                        }
                        reorder.erase(ready);
                        in_flight.leave();
                        detail::gauge_set("pipeline.batches_in_flight",
                                          in_flight.current());
                        ++expected;
                    }
                    const std::lock_guard lock(stats_mutex);
                    stats.max_reorder_depth =
                        std::max(stats.max_reorder_depth, reorder.size());
                }
            } catch (...) {
                capture(std::current_exception());
                in.close();
                out.close();
            }
        });

        reader.join();
        for (auto& worker : workers) worker.join();
        writer.join();

        stats.reader_stall_seconds = in.push_stall_seconds();
        stats.map_stall_seconds =
            in.pop_stall_seconds() + out.push_stall_seconds();
        stats.writer_stall_seconds = out.pop_stall_seconds();
        stats.max_in_flight = in_flight.peak();
        stats.wall_seconds = wall.seconds();
        detail::counter_add("pipeline.batches", stats.units);
        detail::hist_observe("pipeline.reader_stall_seconds",
                             stats.reader_stall_seconds);
        detail::hist_observe("pipeline.map_stall_seconds",
                             stats.map_stall_seconds);
        detail::hist_observe("pipeline.writer_stall_seconds",
                             stats.writer_stall_seconds);

        if (first_error) std::rethrow_exception(first_error);
        return stats;
    }

private:
    PipelineConfig config_;
};

} // namespace repute::pipeline
