#pragma once
// Chunked FASTA/FASTQ reading: the input stage of the batch pipeline.
//
// StreamingFastxReader turns a (possibly huge) sequence file into a
// series of fixed-size ReadBatches without ever materializing the whole
// file: each next_batch() call parses just enough records to fill one
// batch, so peak reader memory is one batch regardless of file size.
// Built on genomics::FastxRecordStream, which surfaces malformed
// records one at a time instead of throwing away the file — the reader
// applies a per-record error policy on top (drop-and-count, the
// default, or fail-fast for pipelines that must not silently lose
// input).
//
// Batches are fixed-length (the paper's kernels map fixed-n read sets):
// via next_batch() the length locks to the first well-formed record (or
// an explicit config value) and records of any other length are dropped
// and counted, mirroring genomics::to_read_batch's majority rule
// without needing to see the whole file first.
//
// next_bucket() instead serves mixed-length input without dropping
// anything: records are quantized into length classes (sequence length
// rounded up to a multiple of config.length_grid) and accumulated into
// one bucket per class. A bucket dispatches as an independent
// OrderedBatch when it fills, when the buffered-record span exceeds
// config.max_deferred_batches batches (the bucket holding the oldest
// record flushes first, bounding reorder latency), or at end of input.
// Padding is virtual: batch.read_length is the class ceiling — sizing
// kernel scratch exactly as a uniform batch of that length would —
// while each Read keeps its true-length code vector, so mapping output
// is byte-identical to splitting the input by length up front. Each
// read carries a dense global ordinal so a downstream reorder buffer
// can restore input order across interleaved class streams.

#include <cstdint>
#include <deque>
#include <fstream>
#include <istream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "genomics/fastx.hpp"
#include "genomics/sequence.hpp"

namespace repute::pipeline {

/// Policy for structurally malformed records (truncated record, missing
/// '+' line, length-mismatched quality, stray sequence data).
enum class OnMalformed {
    Drop, ///< skip the record, count it, keep streaming
    Fail, ///< throw std::runtime_error naming the record
};

struct StreamingReaderConfig {
    /// Reads per batch; the last batch of a file may be smaller.
    std::size_t batch_size = 4096;
    OnMalformed on_malformed = OnMalformed::Drop;
    /// Fixed read length. next_batch(): 0 locks to the first
    /// well-formed record. next_bucket(): 0 selects length-bucketed
    /// mode; non-zero degenerates to a single class that drops every
    /// other length (the fixed path's filter, bucket-shaped).
    std::size_t read_length = 0;
    genomics::FastxFormat format = genomics::FastxFormat::Auto;
    /// Length-class quantization for next_bucket(): a read of length n
    /// lands in the class whose ceiling is n rounded up to a multiple
    /// of this grid. 1 = exact-length classes; 0 is treated as 1.
    std::size_t length_grid = 16;
    /// Flush-span bound for next_bucket(): once more than
    /// max_deferred_batches * batch_size records sit in partially
    /// filled buckets, the bucket holding the oldest record flushes
    /// (possibly short). Bounds both reader memory and how far the
    /// output reorder buffer must look back.
    std::size_t max_deferred_batches = 8;
};

struct StreamingReaderStats {
    std::size_t records = 0;           ///< well-formed records parsed
    std::size_t batches = 0;           ///< non-empty batches yielded
    std::size_t dropped_malformed = 0; ///< structural rejects (Drop mode)
    std::size_t dropped_length = 0;    ///< wrong-length records
    std::size_t read_length = 0;       ///< locked batch read length
    std::string last_error;            ///< most recent malformed message
    /// next_bucket() only: virtual pad bases (class ceiling minus true
    /// length, summed over accepted reads) and distinct length classes.
    std::size_t pad_bases = 0;
    std::size_t length_classes = 0;

    std::size_t dropped() const noexcept {
        return dropped_malformed + dropped_length;
    }
};

/// A dispatched length-class bucket: a ReadBatch whose read_length is
/// the class ceiling, plus the global input ordinal of each read
/// (ordinals[i] belongs to batch.reads[i]; dense across all accepted
/// reads of the file, so a reorder buffer keyed on them restores input
/// order across interleaved buckets).
struct OrderedBatch {
    genomics::ReadBatch batch;
    std::vector<std::uint64_t> ordinals;
};

class StreamingFastxReader {
public:
    /// The stream must outlive the reader.
    explicit StreamingFastxReader(std::istream& in,
                                  StreamingReaderConfig config = {});
    /// Opens `path`; throws std::runtime_error when it cannot be read.
    explicit StreamingFastxReader(const std::string& path,
                                  StreamingReaderConfig config = {});

    /// Fills `out` with up to batch_size reads (ids dense within the
    /// batch, exactly like genomics::to_read_batch). Returns false when
    /// the input is exhausted and `out` came back empty. Throws on a
    /// malformed record under OnMalformed::Fail.
    bool next_batch(genomics::ReadBatch& out);

    /// Mixed-length counterpart of next_batch(): yields the next ready
    /// length-class bucket (see the header comment for dispatch rules).
    /// Returns false when the input is exhausted and every bucket has
    /// been flushed. Do not interleave with next_batch() on the same
    /// reader — the two maintain independent accumulation state.
    bool next_bucket(OrderedBatch& out);

    const StreamingReaderStats& stats() const noexcept { return stats_; }
    const StreamingReaderConfig& config() const noexcept { return config_; }

private:
    struct Bucket {
        genomics::ReadBatch batch;
        std::vector<std::uint64_t> ordinals;
        std::size_t pad_bases = 0;
    };

    void flush_bucket(std::size_t ceiling);
    void flush_oldest();

    std::unique_ptr<std::ifstream> owned_; ///< set by the path ctor
    genomics::FastxRecordStream stream_;
    StreamingReaderConfig config_;
    StreamingReaderStats stats_;
    // next_bucket() accumulation state, keyed by class ceiling.
    std::map<std::size_t, Bucket> buckets_;
    std::deque<OrderedBatch> ready_;
    std::set<std::size_t> classes_seen_;
    std::uint64_t next_ordinal_ = 0;
    std::size_t buffered_ = 0; ///< records across open buckets
    bool input_done_ = false;
};

/// A dispatched paired bucket: lockstep mate batches (first.reads[i]
/// pairs with second.reads[i]; each side's read_length is its own class
/// ceiling) plus the global pair ordinal of each slot.
struct OrderedPairBatch {
    genomics::ReadBatch first;
    genomics::ReadBatch second;
    std::vector<std::uint64_t> ordinals;
};

/// Lockstep paired reader over two mate files with per-pair length
/// bucketing: pairs are classed by the (ceiling1, ceiling2) tuple, so
/// every bucket is internally uniform on both sides. Malformed records
/// drop (or fail) the whole pair, keeping the files record-synchronized;
/// one file ending before the other throws. Stats count pairs, not
/// individual records.
class PairedStreamingReader {
public:
    /// Both streams must outlive the reader.
    PairedStreamingReader(std::istream& in1, std::istream& in2,
                          StreamingReaderConfig config = {});
    PairedStreamingReader(const std::string& path1,
                          const std::string& path2,
                          StreamingReaderConfig config = {});

    /// Yields the next ready pair bucket; same dispatch rules as
    /// StreamingFastxReader::next_bucket. Throws when the mate files
    /// desynchronize (different record counts).
    bool next_bucket(OrderedPairBatch& out);

    const StreamingReaderStats& stats() const noexcept { return stats_; }
    const StreamingReaderConfig& config() const noexcept { return config_; }

private:
    struct PairBucket {
        genomics::ReadBatch first;
        genomics::ReadBatch second;
        std::vector<std::uint64_t> ordinals;
        std::size_t pad_bases = 0;
    };

    void flush_bucket(std::uint64_t key);
    void flush_oldest();

    std::unique_ptr<std::ifstream> owned1_, owned2_;
    genomics::FastxRecordStream stream1_, stream2_;
    StreamingReaderConfig config_;
    StreamingReaderStats stats_;
    // Keyed by (ceiling1 << 32) | ceiling2.
    std::map<std::uint64_t, PairBucket> buckets_;
    std::deque<OrderedPairBatch> ready_;
    std::set<std::uint64_t> classes_seen_;
    std::uint64_t next_ordinal_ = 0;
    std::size_t buffered_ = 0; ///< pairs across open buckets
    bool input_done_ = false;
};

} // namespace repute::pipeline
