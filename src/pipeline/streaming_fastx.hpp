#pragma once
// Chunked FASTA/FASTQ reading: the input stage of the batch pipeline.
//
// StreamingFastxReader turns a (possibly huge) sequence file into a
// series of fixed-size ReadBatches without ever materializing the whole
// file: each next_batch() call parses just enough records to fill one
// batch, so peak reader memory is one batch regardless of file size.
// Built on genomics::FastxRecordStream, which surfaces malformed
// records one at a time instead of throwing away the file — the reader
// applies a per-record error policy on top (drop-and-count, the
// default, or fail-fast for pipelines that must not silently lose
// input).
//
// Batches are fixed-length (the paper's kernels map fixed-n read sets):
// the length locks to the first well-formed record (or an explicit
// config value) and records of any other length are dropped and
// counted, mirroring genomics::to_read_batch's majority rule without
// needing to see the whole file first.

#include <fstream>
#include <istream>
#include <memory>
#include <string>

#include "genomics/fastx.hpp"
#include "genomics/sequence.hpp"

namespace repute::pipeline {

/// Policy for structurally malformed records (truncated record, missing
/// '+' line, length-mismatched quality, stray sequence data).
enum class OnMalformed {
    Drop, ///< skip the record, count it, keep streaming
    Fail, ///< throw std::runtime_error naming the record
};

struct StreamingReaderConfig {
    /// Reads per batch; the last batch of a file may be smaller.
    std::size_t batch_size = 4096;
    OnMalformed on_malformed = OnMalformed::Drop;
    /// Fixed read length; 0 locks to the first well-formed record.
    std::size_t read_length = 0;
    genomics::FastxFormat format = genomics::FastxFormat::Auto;
};

struct StreamingReaderStats {
    std::size_t records = 0;           ///< well-formed records parsed
    std::size_t batches = 0;           ///< non-empty batches yielded
    std::size_t dropped_malformed = 0; ///< structural rejects (Drop mode)
    std::size_t dropped_length = 0;    ///< wrong-length records
    std::size_t read_length = 0;       ///< locked batch read length
    std::string last_error;            ///< most recent malformed message

    std::size_t dropped() const noexcept {
        return dropped_malformed + dropped_length;
    }
};

class StreamingFastxReader {
public:
    /// The stream must outlive the reader.
    explicit StreamingFastxReader(std::istream& in,
                                  StreamingReaderConfig config = {});
    /// Opens `path`; throws std::runtime_error when it cannot be read.
    explicit StreamingFastxReader(const std::string& path,
                                  StreamingReaderConfig config = {});

    /// Fills `out` with up to batch_size reads (ids dense within the
    /// batch, exactly like genomics::to_read_batch). Returns false when
    /// the input is exhausted and `out` came back empty. Throws on a
    /// malformed record under OnMalformed::Fail.
    bool next_batch(genomics::ReadBatch& out);

    const StreamingReaderStats& stats() const noexcept { return stats_; }
    const StreamingReaderConfig& config() const noexcept { return config_; }

private:
    std::unique_ptr<std::ifstream> owned_; ///< set by the path ctor
    genomics::FastxRecordStream stream_;
    StreamingReaderConfig config_;
    StreamingReaderStats stats_;
};

} // namespace repute::pipeline
