#include "pipeline/mapping_api.hpp"

#include <algorithm>
#include <istream>
#include <stdexcept>

#include "genomics/fastx.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace repute::pipeline {

namespace {

/// Releases the granted mappers on every exit path of map().
class PoolGrant {
public:
    PoolGrant(MappingSession& session,
              std::vector<core::Mapper*> granted,
              void (MappingSession::*release)(
                  const std::vector<core::Mapper*>&))
        : session_(session), release_(release),
          granted_(std::move(granted)) {}
    ~PoolGrant() { (session_.*release_)(granted_); }
    PoolGrant(const PoolGrant&) = delete;
    PoolGrant& operator=(const PoolGrant&) = delete;

    const std::vector<core::Mapper*>& mappers() const noexcept {
        return granted_;
    }

private:
    MappingSession& session_;
    void (MappingSession::*release_)(const std::vector<core::Mapper*>&);
    std::vector<core::Mapper*> granted_;
};

ocl::Platform make_platform(const std::string& name) {
    if (name == "system1") return ocl::Platform::system1();
    if (name == "system2") return ocl::Platform::system2();
    throw std::invalid_argument(
        "MappingSession: platform must be 'system1' or 'system2', got: " +
        name);
}

} // namespace

std::unique_ptr<MappingSession> MappingSession::from_fasta(
    const std::string& fasta_path, SessionConfig config) {
    const auto records = genomics::read_fasta_file(fasta_path);
    if (records.empty()) {
        throw std::runtime_error("MappingSession: no sequences in " +
                                 fasta_path);
    }
    return from_multi(genomics::MultiReference(records),
                      std::move(config));
}

std::unique_ptr<MappingSession> MappingSession::from_multi(
    genomics::MultiReference multi, SessionConfig config) {
    std::unique_ptr<MappingSession> session(new MappingSession());
    session->config_ = std::move(config);
    session->owned_multi_.emplace(std::move(multi));
    session->multi_ = &*session->owned_multi_;
    const util::Stopwatch timer;
    session->owned_fm_.emplace(
        session->multi_->concatenated(), session->config_.sa_sample,
        session->config_.checkpoint_every, session->config_.qgram_length);
    session->index_seconds_ = timer.seconds();
    session->fm_ = &*session->owned_fm_;
    session->build_pool();
    return session;
}

std::unique_ptr<MappingSession> MappingSession::from_rix(
    const std::string& rix_path, SessionConfig config) {
    std::unique_ptr<MappingSession> session(new MappingSession());
    session->config_ = std::move(config);
    const util::Stopwatch timer;
    if (index::is_rixm_manifest(rix_path)) {
        session->sharded_.emplace(index::ShardedIndex::open(rix_path));
        session->index_seconds_ = timer.seconds();
        session->multi_ = &session->sharded_->multi();
    } else {
        session->mapped_.emplace(index::MappedIndex::open(rix_path));
        session->index_seconds_ = timer.seconds();
        session->multi_ = &session->mapped_->multi();
        session->fm_ = &session->mapped_->fm();
    }
    session->build_pool();
    return session;
}

const index::FmIndex& MappingSession::fm() const {
    if (fm_ == nullptr) {
        throw std::logic_error(
            "MappingSession: sharded sessions have no single FM-index");
    }
    return *fm_;
}

void MappingSession::build_pool() {
    platform_.emplace(make_platform(config_.platform));
    std::vector<core::DeviceShare> shares;
    for (const auto& name : config_.devices) {
        shares.push_back({&platform_->device(name), 1.0});
    }
    if (config_.transfer.modeled()) {
        for (const auto& name : config_.devices) {
            platform_->device(name).set_transfer_spec(config_.transfer);
        }
    }
    core::HeterogeneousMapperConfig mapper_config;
    mapper_config.kernel.s_min = config_.s_min;
    mapper_config.kernel.max_locations_per_read = config_.max_locations;
    mapper_config.kernel.simd_verification = config_.simd_verification;
    mapper_config.schedule = config_.schedule;
    mapper_config.scheduler = config_.scheduler;
    mapper_config.double_buffer = config_.double_buffer;

    if (config_.flavor != "repute" && config_.flavor != "coral") {
        throw std::invalid_argument(
            "MappingSession: flavor must be 'repute' or 'coral', got: " +
            config_.flavor);
    }
    const std::size_t pool =
        std::max<std::size_t>(config_.mapper_pool, 1);
    for (std::size_t i = 0; i < pool; ++i) {
        if (sharded_) {
            auto views = core::shard_views_of(*sharded_);
            pool_.push_back(config_.flavor == "repute"
                                ? core::make_sharded_repute(
                                      std::move(views), shares,
                                      mapper_config)
                                : core::make_sharded_coral(
                                      std::move(views), shares,
                                      mapper_config));
        } else {
            const auto& reference = multi_->concatenated();
            pool_.push_back(
                config_.flavor == "repute"
                    ? core::make_repute(reference, *fm_, shares,
                                        mapper_config)
                    : core::make_coral(reference, *fm_, shares,
                                       mapper_config));
        }
        free_.push_back(pool_.back().get());
    }
    export_footprint_metrics();
}

std::size_t MappingSession::mapped_bytes() const noexcept {
    if (sharded_) return sharded_->mapped_bytes();
    return mapped_ ? mapped_->mapped_bytes() : 0;
}

std::size_t MappingSession::resident_bytes() const noexcept {
    if (sharded_) return sharded_->resident_bytes();
    if (mapped_) return mapped_->resident_bytes();
    return fm_->memory_bytes() +
           multi_->concatenated().sequence().memory_bytes();
}

void MappingSession::export_footprint_metrics() const {
    if (auto* registry = obs::metrics()) {
        registry->gauge("index.mapped_bytes")
            .set(static_cast<double>(mapped_bytes()));
        registry->gauge("index.resident_bytes")
            .set(static_cast<double>(resident_bytes()));
    }
}

std::vector<core::Mapper*> MappingSession::acquire(std::size_t want) {
    if (want == 0) want = 1;
    std::unique_lock lock(pool_mutex_);
    ++active_requests_;
    pool_cv_.wait(lock, [&] { return !free_.empty(); });
    // Fair share: with R active requests nobody may hold more than
    // pool/R mappers, so late arrivals always find capacity soon.
    const std::size_t fair =
        std::max<std::size_t>(1, pool_.size() / active_requests_);
    const std::size_t take = std::min({want, fair, free_.size()});
    std::vector<core::Mapper*> granted(free_.end() -
                                           static_cast<std::ptrdiff_t>(take),
                                       free_.end());
    free_.resize(free_.size() - take);
    if (auto* registry = obs::metrics()) {
        registry->gauge("session.active_requests")
            .set(static_cast<double>(active_requests_));
        registry->gauge("session.mappers_busy")
            .set(static_cast<double>(pool_.size() - free_.size()));
    }
    return granted;
}

void MappingSession::release(const std::vector<core::Mapper*>& granted) {
    {
        const std::lock_guard lock(pool_mutex_);
        free_.insert(free_.end(), granted.begin(), granted.end());
        --active_requests_;
        if (auto* registry = obs::metrics()) {
            registry->gauge("session.active_requests")
                .set(static_cast<double>(active_requests_));
            registry->gauge("session.mappers_busy")
                .set(static_cast<double>(pool_.size() - free_.size()));
        }
    }
    pool_cv_.notify_all();
}

MapResponse MappingSession::map(const MapRequest& request,
                                std::ostream& sam_out) {
    if (request.reads == nullptr) {
        throw std::invalid_argument(
            "MappingSession: request carries no reads stream");
    }
    if (request.monolithic && request.reads2 != nullptr) {
        throw std::invalid_argument(
            "MappingSession: monolithic requests are single-end only");
    }

    const util::Stopwatch wall;
    const PoolGrant grant(*this, acquire(request.map_workers),
                          &MappingSession::release);
    const auto& mappers = grant.mappers();

    MapResponse response;
    response.workers_granted = mappers.size();

    SamEmitterConfig emit_config;
    emit_config.cigar = request.cigar;
    emit_config.delta = request.delta;
    SamEmitter emitter(sam_out, *multi_, emit_config);
    emitter.write_header();

    PipelineConfig pipe_config;
    pipe_config.queue_depth = request.queue_depth;
    pipe_config.map_workers = mappers.size();

    if (request.reads2 != nullptr) { // paired-end
        std::vector<std::unique_ptr<core::PairedMapper>> paired_owned;
        std::vector<core::PairedMapper*> paired;
        for (auto* mapper : mappers) {
            paired_owned.push_back(std::make_unique<core::PairedMapper>(
                *mapper, multi_->concatenated(), request.pair));
            paired.push_back(paired_owned.back().get());
        }
        PairedStreamingReader reader(*request.reads, *request.reads2,
                                     request.reader);
        RecordReorderWriter writer(sam_out);
        response.pipeline = run_bucketed_paired_pipeline(
            reader, paired, request.delta,
            [&](std::size_t, const OrderedPairBatch& unit,
                const core::PairedResult& result) {
                // Sinks run serialized in the pipeline's writer thread;
                // the reorder writer restores input order across the
                // interleaved length-class buckets.
                auto rendered = emitter.render_paired(unit.first,
                                                      unit.second, result);
                for (std::size_t i = 0; i < rendered.size(); ++i) {
                    writer.add(unit.ordinals[i],
                               std::move(rendered[i]));
                }
            },
            pipe_config);
        writer.finish();
        // Paired reader stats count pairs; the response counts reads.
        response.reads_in =
            2 * (reader.stats().records + reader.stats().dropped());
        response.dropped = 2 * reader.stats().dropped();
    } else if (request.monolithic) {
        std::size_t length_dropped = 0;
        const auto batch = genomics::to_read_batch(
            genomics::read_fastq(*request.reads), &length_dropped);
        if (batch.empty()) {
            throw std::runtime_error(
                "MappingSession: no reads in monolithic request");
        }
        const auto result = mappers.front()->map(batch, request.delta);
        emitter.emit(batch, result);
        response.reads_in = batch.size() + length_dropped;
        response.dropped = length_dropped;
        response.xfer_bytes_staged = result.bytes_staged();
        response.xfer_bytes_drained = result.bytes_drained();
    } else { // single-end streaming (length-bucketed)
        StreamingFastxReader reader(*request.reads, request.reader);
        RecordReorderWriter writer(sam_out);
        response.pipeline = run_bucketed_pipeline(
            reader, mappers, request.delta,
            [&](std::size_t, const OrderedBatch& unit,
                const core::MapResult& result) {
                // Sinks run serialized in the pipeline's writer thread,
                // so plain accumulation is safe; the reorder writer
                // restores input order across interleaved buckets.
                response.xfer_bytes_staged += result.bytes_staged();
                response.xfer_bytes_drained += result.bytes_drained();
                for (std::size_t i = 0; i < unit.batch.size(); ++i) {
                    writer.add(unit.ordinals[i],
                               emitter.render_read(unit.batch, i,
                                                   result));
                }
            },
            pipe_config);
        writer.finish();
        response.reads_in =
            reader.stats().records + reader.stats().dropped();
        response.dropped = reader.stats().dropped();
    }

    response.emitted = emitter.stats();
    response.wall_seconds = wall.seconds();

    if (auto* registry = obs::metrics()) {
        registry->counter("session.requests").add();
        registry->counter("session.reads")
            .add(response.reads_in - response.dropped);
        registry->histogram("session.request_seconds")
            .observe(response.wall_seconds);
        if (!request.tenant.empty()) {
            const std::string prefix = "serve.tenant." + request.tenant;
            registry->counter(prefix + ".requests").add();
            registry->counter(prefix + ".reads")
                .add(response.reads_in - response.dropped);
            registry->histogram(prefix + ".request_seconds")
                .observe(response.wall_seconds);
        }
    }
    return response;
}

} // namespace repute::pipeline
