#pragma once
// Streaming SAM emission — the output stage of the batch pipeline.
//
// One SamEmitter owns an output stream for the duration of a run:
// write_header() once, then emit() per mapped batch, in order. The
// record formatting is the single source of truth shared by the
// streaming CLI and the monolithic map_fastq path, which is what makes
// "streaming output is byte-identical to monolithic output" a testable
// property rather than a hope.
//
// Coordinates: mapping positions are on the concatenated multi-sequence
// text; the emitter resolves them back to (sequence name, 1-based
// offset) and drops mappings whose window straddles a sequence
// boundary. With cigar enabled (the default) each mapping is re-aligned
// host-side for a precise position and CIGAR string
// (core::annotate_mapping); mappings the re-alignment cannot confirm
// are dropped and counted.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/paired.hpp"
#include "genomics/multi_reference.hpp"

namespace repute::pipeline {

struct SamEmitterConfig {
    bool cigar = true;      ///< host-side re-alignment per mapping
    std::uint32_t delta = 5; ///< edit budget the mappings were made at
};

class SamEmitter {
public:
    struct Stats {
        std::size_t records = 0;          ///< SAM lines written
        std::size_t reads = 0;            ///< reads (or mates) covered
        std::size_t dropped_boundary = 0; ///< straddled a sequence join
        std::size_t dropped_cigar = 0;    ///< re-alignment disagreed
    };

    /// `out` and `multi` must outlive the emitter.
    SamEmitter(std::ostream& out, const genomics::MultiReference& multi,
               SamEmitterConfig config);

    /// @HD / @SQ (one per sequence) / @PG lines.
    void write_header();

    /// Emits one batch's mappings: every read produces at least one
    /// record (unmapped reads get a flag-0x4 placeholder); the first
    /// reported mapping is primary, the rest are flagged secondary.
    /// Boundary checks use each read's own length, so mixed-length
    /// (bucketed) batches emit identically to uniform ones.
    void emit(const genomics::ReadBatch& batch,
              const core::MapResult& result);

    /// Paired batch: two records per pair with mate flags and TLEN,
    /// resolved to per-sequence coordinates. Mates whose placement
    /// straddles a sequence boundary are demoted to unmapped records.
    void emit_paired(const genomics::ReadBatch& first,
                     const genomics::ReadBatch& second,
                     const core::PairedResult& result);

    /// render_*: the exact bytes emit()/emit_paired() would write for
    /// one read (or one pair — two lines), returned instead of written.
    /// Stats update as if emitted. Used by the bucketed streaming path,
    /// which reorders per-read strings by global input ordinal before
    /// they reach the output stream.
    std::string render_read(const genomics::ReadBatch& batch,
                            std::size_t index,
                            const core::MapResult& result);
    std::vector<std::string> render_paired(
        const genomics::ReadBatch& first,
        const genomics::ReadBatch& second,
        const core::PairedResult& result);

    const Stats& stats() const noexcept { return stats_; }

private:
    void write_record(std::ostream& out, const genomics::SamRecord& rec);
    void emit_read(std::ostream& out, const genomics::ReadBatch& batch,
                   std::size_t index, const core::MapResult& result);
    void finalize_pair_record(std::ostream& out, genomics::SamRecord& rec,
                              std::uint32_t own_len,
                              std::uint32_t mate_len);

    std::ostream* out_;
    const genomics::MultiReference* multi_;
    SamEmitterConfig config_;
    Stats stats_;
};

/// Restores input order over per-record SAM strings produced out of
/// order (interleaved length-class buckets): add() parks a record under
/// its dense global ordinal and flushes the contiguous run starting at
/// the next unwritten ordinal. finish() asserts nothing is left parked
/// (a gap means an ordinal was never produced).
class RecordReorderWriter {
public:
    explicit RecordReorderWriter(std::ostream& out) : out_(&out) {}

    void add(std::uint64_t ordinal, std::string bytes);
    /// Throws std::logic_error if records are still parked.
    void finish();

    std::size_t max_parked() const noexcept { return max_parked_; }

private:
    std::ostream* out_;
    std::map<std::uint64_t, std::string> parked_;
    std::uint64_t next_ = 0;
    std::size_t max_parked_ = 0;
};

} // namespace repute::pipeline
