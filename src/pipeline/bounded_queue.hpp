#pragma once
// Bounded blocking queue — the backpressure primitive of the batch
// pipeline.
//
// A fixed-capacity FIFO shared by one or more producers and consumers.
// push() blocks while the queue is full, so a fast producer is paced by
// the slowest downstream stage and pipeline memory stays bounded by
// capacity x item size. close() wakes everyone: pending items still
// drain, further pushes are refused. The queue keeps per-side stall
// clocks (host wall time spent blocked) — the raw signal behind the
// pipeline's "which stage starves" instrumentation.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace repute::pipeline {

template <typename T>
class BoundedQueue {
public:
    /// Capacity is clamped to at least 1.
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Blocks while full. Returns false (and drops `value`) when the
    /// queue was closed before space became available.
    bool push(T value) {
        std::unique_lock lock(mutex_);
        if (items_.size() >= capacity_ && !closed_) {
            const auto start = clock::now();
            not_full_.wait(lock, [&] {
                return items_.size() < capacity_ || closed_;
            });
            push_stall_seconds_ += elapsed(start);
        }
        if (closed_) return false;
        items_.push_back(std::move(value));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Blocks while empty. Returns nullopt once the queue is closed and
    /// fully drained.
    std::optional<T> pop() {
        std::unique_lock lock(mutex_);
        if (items_.empty() && !closed_) {
            const auto start = clock::now();
            not_empty_.wait(lock,
                            [&] { return !items_.empty() || closed_; });
            pop_stall_seconds_ += elapsed(start);
        }
        if (items_.empty()) return std::nullopt; // closed and drained
        T value = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /// Refuses further pushes and wakes all waiters; queued items still
    /// drain through pop(). Idempotent.
    void close() {
        {
            const std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    std::size_t depth() const {
        const std::lock_guard lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const noexcept { return capacity_; }

    /// Host seconds producers spent blocked on a full queue.
    double push_stall_seconds() const {
        const std::lock_guard lock(mutex_);
        return push_stall_seconds_;
    }

    /// Host seconds consumers spent blocked on an empty queue.
    double pop_stall_seconds() const {
        const std::lock_guard lock(mutex_);
        return pop_stall_seconds_;
    }

private:
    using clock = std::chrono::steady_clock;

    static double elapsed(clock::time_point start) {
        return std::chrono::duration<double>(clock::now() - start).count();
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    bool closed_ = false;
    double push_stall_seconds_ = 0.0;
    double pop_stall_seconds_ = 0.0;
};

} // namespace repute::pipeline
