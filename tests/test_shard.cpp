// Reference sharding: planner properties, merge semantics, and the
// headline identity — mapping through a sharded index is byte-identical
// to the monolithic index while per-device residency stays one shard
// image (the quarter-of-RAM OpenCL ceiling the sharding exists to
// bypass).
//
// Identity fixtures are substitution-only reads over a clean random
// reference: index-frequency-dependent DP seed plans can pick different
// collapse representatives for indel clusters between a shard's local
// index and the monolithic one, which is a documented seed-plan caveat
// (DESIGN.md §5g), not a merge bug.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/repute_mapper.hpp"
#include "core/sharded_mapper.hpp"
#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "index/qgram_table.hpp"
#include "index/rixm.hpp"
#include "index/shard_plan.hpp"
#include "obs/trace.hpp"
#include "ocl/device.hpp"
#include "pipeline/mapping_api.hpp"

namespace repute {
namespace {

using core::DeviceShare;
using core::MapResult;
using core::ReadMapping;
using genomics::Strand;

genomics::Reference clean_genome(std::size_t length, std::uint64_t seed) {
    genomics::GenomeSimConfig config;
    config.length = length;
    config.seed = seed;
    config.interspersed_fraction = 0.0;
    config.tandem_fraction = 0.0;
    return genomics::simulate_genome(config);
}

/// `n` contigs of staggered lengths carved from one clean random text.
genomics::MultiReference contigs(std::size_t n, std::size_t total,
                                 std::uint64_t seed) {
    const std::string text =
        clean_genome(total, seed).sequence().to_string();
    std::vector<genomics::FastaRecord> records;
    std::size_t at = 0;
    for (std::size_t i = 0; i < n; ++i) {
        // Staggered sizes so the minmax planner has real choices; the
        // unit is total/(n+1), so the leftovers always leave the last
        // contig non-empty.
        const std::size_t unit = total / (n + 1);
        const std::size_t want =
            i + 1 == n ? text.size() - at : unit + (i % 3) * (unit / 4);
        records.push_back({"chr" + std::to_string(i),
                           text.substr(at, want)});
        at += want;
    }
    return genomics::MultiReference(records);
}

genomics::SimulatedReads clean_reads(const genomics::Reference& reference,
                                     std::size_t n, std::size_t length,
                                     std::uint32_t max_errors,
                                     std::uint64_t seed) {
    genomics::ReadSimConfig config;
    config.n_reads = n;
    config.read_length = length;
    config.max_errors = max_errors;
    config.indel_fraction = 0.0; // see the file comment
    config.seed = seed;
    return genomics::simulate_reads(reference, config);
}

ocl::DeviceProfile cpu_profile(const std::string& name,
                               std::uint64_t global_memory =
                                   1ULL << 30) {
    ocl::DeviceProfile p;
    p.name = name;
    p.compute_units = 4;
    p.ops_per_unit_per_second = 1e9;
    p.global_memory_bytes = global_memory;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

void expect_identical(const MapResult& a, const MapResult& b) {
    ASSERT_EQ(a.per_read.size(), b.per_read.size());
    for (std::size_t i = 0; i < a.per_read.size(); ++i) {
        ASSERT_EQ(a.per_read[i], b.per_read[i]) << "read " << i;
    }
}

// Paths must be unique per process: ctest runs every TEST of a suite as
// its own process, and suite-level fixtures (SetUpTestSuite) would
// otherwise build and delete the same shard files concurrently.
std::string temp_manifest_path(const std::string& tag) {
    return testing::TempDir() + "repute_shard_" + tag + "_" +
           std::to_string(::getpid()) + ".rixm";
}

void remove_sharded(const index::ShardBuildResult& built) {
    for (const std::string& p : built.shard_paths) std::remove(p.c_str());
    std::remove(built.manifest_path.c_str());
}

// ---------------------------------------------------------------------
// Planner

TEST(ShardPlan, ExplicitCountTilesTheReference) {
    const auto multi = contigs(6, 60'000, 17);
    index::ShardPlanConfig config;
    config.shard_count = 4;
    config.overlap = 128;
    const auto plan = index::plan_shards(multi, config);
    ASSERT_EQ(plan.shards.size(), 4u);

    std::uint32_t cursor = 0;
    std::uint32_t sequences = 0;
    for (std::size_t i = 0; i < plan.shards.size(); ++i) {
        const auto& s = plan.shards[i];
        EXPECT_EQ(s.index, i);
        EXPECT_EQ(s.base, cursor) << "owned ranges must tile";
        EXPECT_GT(s.owned_length, 0u);
        EXPECT_EQ(s.left_overlap, i == 0 ? 0u : 128u);
        EXPECT_EQ(s.right_overlap,
                  i + 1 == plan.shards.size() ? 0u : 128u);
        cursor += s.owned_length;
        sequences += s.sequence_count;
    }
    EXPECT_EQ(cursor, multi.concatenated().size());
    EXPECT_EQ(sequences, multi.sequence_count());
    EXPECT_GT(plan.max_estimated_bytes, 0u);
}

TEST(ShardPlan, CountClampsToContigCount) {
    const auto multi = contigs(3, 12'000, 5);
    index::ShardPlanConfig config;
    config.shard_count = 10;
    const auto plan = index::plan_shards(multi, config);
    EXPECT_EQ(plan.shards.size(), 3u); // contigs are never split
}

TEST(ShardPlan, MinmaxBeatsNaiveContigSplit) {
    // One huge contig plus small ones: the minmax partition must not
    // lump a small contig in with the huge one when a cut exists.
    std::vector<genomics::FastaRecord> records;
    const std::string text = clean_genome(40'000, 9)
                                 .sequence()
                                 .to_string();
    records.push_back({"big", text.substr(0, 30'000)});
    records.push_back({"s1", text.substr(30'000, 5'000)});
    records.push_back({"s2", text.substr(35'000, 5'000)});
    index::ShardPlanConfig config;
    config.shard_count = 2;
    const auto plan =
        index::plan_shards(genomics::MultiReference(records), config);
    ASSERT_EQ(plan.shards.size(), 2u);
    EXPECT_EQ(plan.shards[0].sequence_count, 1u); // big alone
    EXPECT_EQ(plan.shards[1].sequence_count, 2u);
}

TEST(ShardPlan, BudgetPacksUnderTheBudget) {
    const auto multi = contigs(6, 60'000, 23);
    index::ShardPlanConfig config;
    // A budget around a third of the whole-reference estimate forces
    // several shards.
    config.budget_bytes =
        index::estimate_index_bytes(multi.concatenated().size(), 4, 128,
                                    8) /
        3;
    const auto plan = index::plan_shards(multi, config);
    EXPECT_GT(plan.shards.size(), 1u);
    EXPECT_LE(plan.max_estimated_bytes, config.budget_bytes);
}

TEST(ShardPlan, OversizedContigIsAnError) {
    const auto multi = contigs(3, 30'000, 31);
    index::ShardPlanConfig config;
    config.budget_bytes = 1024; // nothing fits
    try {
        index::plan_shards(multi, config);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("alone exceeds"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ShardPlan, NoCountAndNoBudgetIsAnError) {
    EXPECT_THROW(index::plan_shards(contigs(2, 8'000, 1), {}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Tail shards shorter than the q-gram depth

TEST(ShardQgram, TableDepthClampsToTinyTexts) {
    // A tail shard can own a contig shorter than the configured q: the
    // jump table must clamp (a table of patterns longer than the text is
    // all-empty footprint), never reject the build.
    const auto tiny = genomics::Reference::from_ascii("tiny", "ACGTAC");
    const index::FmIndex fm(tiny, 1, 128, /*qgram_length=*/8);
    if (fm.qgrams() != nullptr) {
        EXPECT_LE(fm.qgrams()->q(), tiny.size());
    }
    EXPECT_EQ(fm.size(), tiny.size());

    // And end to end: a plan whose last shard is a tiny contig builds
    // and opens.
    std::vector<genomics::FastaRecord> records;
    const std::string text =
        clean_genome(9'000, 3).sequence().to_string();
    records.push_back({"main", text.substr(0, 8'994)});
    records.push_back({"stub", text.substr(8'994)}); // 6 bp < q = 8
    index::ShardBuildConfig build;
    build.plan.shard_count = 2;
    build.plan.overlap = 64;
    const auto built = index::build_sharded_index(
        genomics::MultiReference(records),
        temp_manifest_path("tinytail"), build);
    const auto opened = index::ShardedIndex::open(built.manifest_path);
    ASSERT_EQ(opened.shards().size(), 2u);
    EXPECT_EQ(opened.shards()[1].owned_length, 6u);
    remove_sharded(built);
}

// ---------------------------------------------------------------------
// Merge semantics

std::vector<ReadMapping> mapping_list(
    std::initializer_list<std::pair<std::uint32_t, Strand>> items) {
    std::vector<ReadMapping> out;
    for (const auto& [pos, strand] : items) {
        out.push_back({pos, 0, strand});
    }
    return out;
}

std::vector<ReadMapping> merged(
    const std::vector<std::vector<ReadMapping>>& lists,
    std::uint32_t cap) {
    std::vector<std::span<const ReadMapping>> spans(lists.begin(),
                                                    lists.end());
    std::vector<ReadMapping> out;
    core::merge_sharded_read(spans, cap, out);
    return out;
}

TEST(ShardMerge, ConcatenatesStrandPhasesAcrossShards) {
    // Forward accepts of every shard come before any reverse accept —
    // the monolithic kernel's generation order.
    const auto out = merged(
        {mapping_list({{10, Strand::Forward}, {12, Strand::Reverse}}),
         mapping_list({{50, Strand::Forward}})},
        100);
    EXPECT_EQ(out, mapping_list({{10, Strand::Forward},
                                 {12, Strand::Reverse},
                                 {50, Strand::Forward}}));
}

TEST(ShardMerge, CapTruncatesInGenerationOrderNotPositionOrder) {
    // Cap 2 must keep the two earliest *generated* accepts (fwd shard 0,
    // fwd shard 1), dropping shard 0's reverse accept even though its
    // position sorts earlier.
    const auto out = merged(
        {mapping_list({{10, Strand::Forward}, {12, Strand::Reverse}}),
         mapping_list({{50, Strand::Forward}})},
        2);
    EXPECT_EQ(out, mapping_list(
                       {{10, Strand::Forward}, {50, Strand::Forward}}));
}

TEST(ShardMerge, DeduplicatesByPositionAndStrand) {
    const auto out = merged(
        {mapping_list({{10, Strand::Forward}}),
         mapping_list({{10, Strand::Forward}, {11, Strand::Forward}})},
        100);
    EXPECT_EQ(out, mapping_list(
                       {{10, Strand::Forward}, {11, Strand::Forward}}));
}

// ---------------------------------------------------------------------
// Sharded vs monolithic identity (core level)

class ShardIdentityTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        multi_ = new genomics::MultiReference(contigs(6, 72'000, 42));
        fm_ = new index::FmIndex(multi_->concatenated(), 4);
        index::ShardBuildConfig build;
        build.plan.shard_count = 4;
        build.plan.overlap = 256; // >= read_length + delta below
        build.jobs = 2;
        built_ = new index::ShardBuildResult(index::build_sharded_index(
            *multi_, temp_manifest_path("identity"), build));
        sharded_ = new index::ShardedIndex(
            index::ShardedIndex::open(built_->manifest_path));
        sim_ = new genomics::SimulatedReads(
            clean_reads(multi_->concatenated(), 500, 100, 4, 7));
    }
    static void TearDownTestSuite() {
        delete sim_;
        delete sharded_;
        remove_sharded(*built_);
        delete built_;
        delete fm_;
        delete multi_;
        sim_ = nullptr;
        sharded_ = nullptr;
        built_ = nullptr;
        fm_ = nullptr;
        multi_ = nullptr;
    }

    static genomics::MultiReference* multi_;
    static index::FmIndex* fm_;
    static index::ShardBuildResult* built_;
    static index::ShardedIndex* sharded_;
    static genomics::SimulatedReads* sim_;
};

genomics::MultiReference* ShardIdentityTest::multi_ = nullptr;
index::FmIndex* ShardIdentityTest::fm_ = nullptr;
index::ShardBuildResult* ShardIdentityTest::built_ = nullptr;
index::ShardedIndex* ShardIdentityTest::sharded_ = nullptr;
genomics::SimulatedReads* ShardIdentityTest::sim_ = nullptr;

TEST_F(ShardIdentityTest, StaticScheduleMatchesMonolithic) {
    ocl::Device dev(cpu_profile("static-cpu"));
    auto mono = core::make_repute(multi_->concatenated(), *fm_,
                                  {{&dev, 1.0}});
    auto sharded = core::make_sharded_repute(
        core::shard_views_of(*sharded_), {{&dev, 1.0}});
    expect_identical(mono->map(sim_->batch, 4),
                     sharded->map(sim_->batch, 4));
}

TEST_F(ShardIdentityTest, StaticMultiDeviceMatchesMonolithic) {
    ocl::Device a(cpu_profile("split-a"));
    ocl::Device b(cpu_profile("split-b"));
    ocl::Device mono_dev(cpu_profile("split-mono"));
    auto mono = core::make_repute(multi_->concatenated(), *fm_,
                                  {{&mono_dev, 1.0}});
    auto sharded = core::make_sharded_repute(
        core::shard_views_of(*sharded_), {{&a, 2.0}, {&b, 1.0}});
    expect_identical(mono->map(sim_->batch, 4),
                     sharded->map(sim_->batch, 4));
}

TEST_F(ShardIdentityTest, DynamicScheduleMatchesMonolithic) {
    ocl::Device mono_dev(cpu_profile("dyn-mono"));
    auto mono = core::make_repute(multi_->concatenated(), *fm_,
                                  {{&mono_dev, 1.0}});
    const auto expected = mono->map(sim_->batch, 4);

    ocl::Device a(cpu_profile("dyn-a"));
    ocl::Device b(cpu_profile("dyn-b"));
    ocl::Device c(cpu_profile("dyn-c"));
    core::HeterogeneousMapperConfig config;
    config.schedule = core::ScheduleMode::Dynamic;
    config.scheduler.chunk_items = 64;
    auto sharded = core::make_sharded_repute(
        core::shard_views_of(*sharded_),
        {{&a, 1.0}, {&b, 2.0}, {&c, 1.0}}, config);
    const auto result = sharded->map(sim_->batch, 4);
    expect_identical(expected, result);
    ASSERT_TRUE(result.used_dynamic_schedule());
    EXPECT_GT(result.schedule->chunks, 0u);
}

TEST_F(ShardIdentityTest, DynamicSurvivesMidBatchDeviceLoss) {
    ocl::Device mono_dev(cpu_profile("loss-mono"));
    auto mono = core::make_repute(multi_->concatenated(), *fm_,
                                  {{&mono_dev, 1.0}});
    const auto expected = mono->map(sim_->batch, 4);

    ocl::Device a(cpu_profile("loss-a"));
    ocl::Device b(cpu_profile("loss-b"));
    ocl::FaultPlan plan;
    plan.fail_on_launch = 2; // dies mid-run, after real work
    plan.fail_forever = true;
    b.inject_faults(plan);

    core::HeterogeneousMapperConfig config;
    config.schedule = core::ScheduleMode::Dynamic;
    config.scheduler.chunk_items = 50;
    auto sharded = core::make_sharded_repute(
        core::shard_views_of(*sharded_), {{&a, 1.0}, {&b, 1.0}},
        config);
    const auto result = sharded->map(sim_->batch, 4);
    expect_identical(expected, result);
    EXPECT_GT(b.fault_launches(), 0u);
}

TEST_F(ShardIdentityTest, CapBindingFirstNMatchesMonolithic) {
    // A cap smaller than the hit count makes the first-n truncation
    // point observable — the merge must reapply it exactly where the
    // monolithic kernel did.
    core::HeterogeneousMapperConfig config;
    config.kernel.max_locations_per_read = 2;
    ocl::Device mono_dev(cpu_profile("cap-mono"));
    auto mono = core::make_repute(multi_->concatenated(), *fm_,
                                  {{&mono_dev, 1.0}}, config);
    ocl::Device dev(cpu_profile("cap-sharded"));
    auto sharded = core::make_sharded_repute(
        core::shard_views_of(*sharded_), {{&dev, 1.0}}, config);
    // delta 5 over noisy reads yields multi-mapping reads that bind the
    // cap; identity must hold regardless.
    expect_identical(mono->map(sim_->batch, 5),
                     sharded->map(sim_->batch, 5));
}

TEST_F(ShardIdentityTest, RepeatMotifAcrossShardsBindsCapIdentically) {
    // Plant one exact 80 bp motif in every contig (so in every shard):
    // a motif read multi-maps across every shard and a cap of 3 binds
    // mid-stream. Exercises cross-shard cap accounting specifically.
    const std::string text =
        clean_genome(48'000, 77).sequence().to_string();
    const std::string motif =
        clean_genome(2'000, 78).sequence().to_string().substr(0, 80);
    std::vector<genomics::FastaRecord> records;
    for (std::size_t i = 0; i < 4; ++i) {
        std::string contig = text.substr(i * 12'000, 12'000);
        contig.replace(1'000 + 700 * i, motif.size(), motif);
        contig.replace(7'000 + 900 * i, motif.size(), motif);
        records.push_back({"rep" + std::to_string(i), contig});
    }
    const genomics::MultiReference multi(records);
    const index::FmIndex fm(multi.concatenated(), 4);
    index::ShardBuildConfig build;
    build.plan.shard_count = 4;
    build.plan.overlap = 128;
    const auto built = index::build_sharded_index(
        multi, temp_manifest_path("motif"), build);
    const auto opened = index::ShardedIndex::open(built.manifest_path);

    genomics::ReadBatch batch;
    batch.read_length = motif.size();
    const auto motif_ref =
        genomics::Reference::from_ascii("m", motif);
    genomics::Read read;
    read.id = 0;
    read.name = "motif";
    read.codes.resize(motif.size());
    motif_ref.sequence().extract(0, motif.size(), read.codes.data());
    batch.reads.push_back(read);

    core::HeterogeneousMapperConfig config;
    config.kernel.max_locations_per_read = 3; // 8 true sites, cap 3
    ocl::Device mono_dev(cpu_profile("motif-mono"));
    auto mono =
        core::make_repute(multi.concatenated(), fm, {{&mono_dev, 1.0}},
                          config);
    ocl::Device dev(cpu_profile("motif-sharded"));
    auto sharded = core::make_sharded_repute(core::shard_views_of(opened),
                                             {{&dev, 1.0}}, config);
    const auto expected = mono->map(batch, 2);
    const auto result = sharded->map(batch, 2);
    expect_identical(expected, result);
    ASSERT_EQ(expected.per_read[0].size(), 3u) << "cap did not bind";
    remove_sharded(built);
}

TEST_F(ShardIdentityTest, OverhangTooSmallIsActionable) {
    index::ShardBuildConfig build;
    build.plan.shard_count = 3;
    build.plan.overlap = 16; // << read_length + delta
    const auto built = index::build_sharded_index(
        *multi_, temp_manifest_path("thin"), build);
    const auto opened = index::ShardedIndex::open(built.manifest_path);
    ocl::Device dev(cpu_profile("thin-cpu"));
    auto sharded = core::make_sharded_repute(core::shard_views_of(opened),
                                             {{&dev, 1.0}});
    try {
        sharded->map(sim_->batch, 4);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("--overlap"),
                  std::string::npos)
            << e.what();
    }
    remove_sharded(built);
}

// ---------------------------------------------------------------------
// The memory ceiling and the shard.* metrics

TEST_F(ShardIdentityTest, MapsPastTheDeviceMemoryCeiling) {
    // Size the device so the monolithic index image busts the
    // quarter-of-RAM single-allocation ceiling but one shard fits: the
    // monolithic mapper must fail to allocate, the sharded one must map
    // — and its per-device peak residency (shard.peak_resident_bytes)
    // must sit within the ceiling. This is the acceptance criterion of
    // the sharding work, asserted, not eyeballed.
    const std::uint64_t mono_image =
        multi_->concatenated().sequence().memory_bytes() +
        fm_->memory_bytes();
    const ocl::DeviceProfile small = cpu_profile(
        "small-cpu", /*global_memory=*/mono_image * 4 - 4096);
    ASSERT_LT(small.max_single_allocation(), mono_image);

    ocl::Device mono_dev(small);
    auto mono = core::make_repute(multi_->concatenated(), *fm_,
                                  {{&mono_dev, 1.0}});
    EXPECT_THROW(mono->map(sim_->batch, 4), ocl::OclError);

    obs::TraceSession session;
    ocl::Device dev(small);
    auto sharded = core::make_sharded_repute(
        core::shard_views_of(*sharded_), {{&dev, 1.0}});
    ASSERT_LE(sharded->max_image_bytes(),
              small.max_single_allocation());

    ocl::Device big(cpu_profile("big-cpu"));
    auto reference_mapper = core::make_repute(
        multi_->concatenated(), *fm_, {{&big, 1.0}});
    expect_identical(reference_mapper->map(sim_->batch, 4),
                     sharded->map(sim_->batch, 4));

    const auto gauges = session.registry().gauge_values();
    ASSERT_TRUE(gauges.count("shard.peak_resident_bytes"));
    EXPECT_LE(gauges.at("shard.peak_resident_bytes"),
              static_cast<double>(small.max_single_allocation()));
    EXPECT_EQ(gauges.at("shard.count"), 4.0);
}

TEST_F(ShardIdentityTest, StaticRunAccountsResidencyAndRestaging) {
    // 1 MB of device memory: the quarter ceiling caps read chunks at a
    // few hundred reads, so every shard needs several chunks — the
    // chunks after the first are the residency hits being asserted.
    obs::TraceSession session;
    ocl::Device dev(cpu_profile("metrics-cpu", 1ULL << 20));
    auto sharded = core::make_sharded_repute(
        core::shard_views_of(*sharded_), {{&dev, 1.0}});
    sharded->map(sim_->batch, 4);

    const auto counters = session.registry().counter_values();
    // 4 shards on one device: every shard image staged once (no
    // affinity possible in shard-major order), chunks after the first
    // per shard are residency hits.
    EXPECT_EQ(counters.at("shard.restages"), 3u);
    EXPECT_GT(counters.at("shard.restage_bytes"), 0u);
    EXPECT_GT(counters.at("shard.residency_hits"), 0u);
}

TEST_F(ShardIdentityTest, DynamicAffinityKeepsResidentShards) {
    obs::TraceSession session;
    ocl::Device a(cpu_profile("aff-a"));
    ocl::Device b(cpu_profile("aff-b"));
    core::HeterogeneousMapperConfig config;
    config.schedule = core::ScheduleMode::Dynamic;
    config.scheduler.chunk_items = 32;
    auto sharded = core::make_sharded_repute(
        core::shard_views_of(*sharded_), {{&a, 1.0}, {&b, 1.0}},
        config);
    sharded->map(sim_->batch, 4);

    const auto counters = session.registry().counter_values();
    // Small chunks over 4 shards x 500 reads: most launches must find
    // their shard already resident (the affinity exists so restaging is
    // the exception, not the rule).
    EXPECT_GT(counters.at("shard.residency_hits"),
              counters.at("shard.restages"));
    EXPECT_GT(counters.at("shard.restage_bytes"), 0u);
}

// ---------------------------------------------------------------------
// Session-level identity: SAM bytes through MappingSession::from_rix

class ShardSessionTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        multi_ = new genomics::MultiReference(contigs(5, 40'000, 99));
        index::ShardBuildConfig build;
        build.plan.shard_count = 4;
        build.plan.overlap = 192;
        built_ = new index::ShardBuildResult(index::build_sharded_index(
            *multi_, temp_manifest_path("session"), build));
    }
    static void TearDownTestSuite() {
        remove_sharded(*built_);
        delete built_;
        delete multi_;
        built_ = nullptr;
        multi_ = nullptr;
    }

    static std::string fastq_of(const genomics::SimulatedReads& sim) {
        std::ostringstream out;
        genomics::write_fastq(out, genomics::to_fastq_records(sim));
        return out.str();
    }

    static std::string map_single(pipeline::MappingSession& session,
                                  const std::string& fastq,
                                  std::uint32_t delta,
                                  pipeline::SamEmitter::Stats* stats =
                                      nullptr) {
        std::istringstream in(fastq);
        pipeline::MapRequest request;
        request.reads = &in;
        request.delta = delta;
        std::ostringstream sam;
        const auto response = session.map(request, sam);
        if (stats != nullptr) *stats = response.emitted;
        return sam.str();
    }

    static std::string map_paired(pipeline::MappingSession& session,
                                  const std::string& fq1,
                                  const std::string& fq2,
                                  std::uint32_t delta) {
        std::istringstream in1(fq1);
        std::istringstream in2(fq2);
        pipeline::MapRequest request;
        request.reads = &in1;
        request.reads2 = &in2;
        request.delta = delta;
        std::ostringstream sam;
        session.map(request, sam);
        return sam.str();
    }

    static genomics::MultiReference* multi_;
    static index::ShardBuildResult* built_;
};

genomics::MultiReference* ShardSessionTest::multi_ = nullptr;
index::ShardBuildResult* ShardSessionTest::built_ = nullptr;

TEST_F(ShardSessionTest, ManifestSessionReportsShardedness) {
    auto session =
        pipeline::MappingSession::from_rix(built_->manifest_path);
    EXPECT_TRUE(session->is_sharded());
    EXPECT_TRUE(session->is_mapped());
    EXPECT_THROW(session->fm(), std::logic_error);
    EXPECT_GT(session->mapped_bytes(), 0u);
    EXPECT_GT(session->resident_bytes(), 0u);
    EXPECT_EQ(session->multi().sequence_count(),
              multi_->sequence_count());
    EXPECT_EQ(session->sharded().shards().size(), 4u);
}

TEST_F(ShardSessionTest, SingleEndSamBytesIdentical) {
    for (const char* flavor : {"repute", "coral"}) {
        pipeline::SessionConfig config;
        config.flavor = flavor;
        auto mono = pipeline::MappingSession::from_multi(
            genomics::MultiReference(*multi_), config);
        auto sharded = pipeline::MappingSession::from_rix(
            built_->manifest_path, config);
        const auto sim =
            clean_reads(multi_->concatenated(), 300, 80, 3, 12);
        const std::string fastq = fastq_of(sim);
        EXPECT_EQ(map_single(*mono, fastq, 3),
                  map_single(*sharded, fastq, 3))
            << "flavor " << flavor;
    }
}

TEST_F(ShardSessionTest, DynamicMultiDeviceSamBytesIdentical) {
    pipeline::SessionConfig config;
    config.schedule = core::ScheduleMode::Dynamic;
    config.devices = {"i7-2600", "gtx590-0", "gtx590-1"};
    auto mono = pipeline::MappingSession::from_multi(
        genomics::MultiReference(*multi_), config);
    auto sharded = pipeline::MappingSession::from_rix(
        built_->manifest_path, config);
    const auto sim = clean_reads(multi_->concatenated(), 300, 80, 3, 13);
    const std::string fastq = fastq_of(sim);
    EXPECT_EQ(map_single(*mono, fastq, 3),
              map_single(*sharded, fastq, 3));
}

TEST_F(ShardSessionTest, PairedEndSamBytesIdentical) {
    auto mono = pipeline::MappingSession::from_multi(
        genomics::MultiReference(*multi_));
    auto sharded =
        pipeline::MappingSession::from_rix(built_->manifest_path);
    const auto sim1 =
        clean_reads(multi_->concatenated(), 200, 80, 3, 21);
    const auto sim2 =
        clean_reads(multi_->concatenated(), 200, 80, 3, 22);
    const std::string fq1 = fastq_of(sim1);
    const std::string fq2 = fastq_of(sim2);
    EXPECT_EQ(map_paired(*mono, fq1, fq2, 3),
              map_paired(*sharded, fq1, fq2, 3));
}

TEST_F(ShardSessionTest, BoundaryStraddlersDemotedIdentically) {
    // Reads copied straight off contig joins of the concatenated text
    // map to positions whose SAM window straddles a sequence boundary;
    // SamEmitter demotes them. The sharded session must demote exactly
    // the same records — equal dropped_boundary counts AND equal bytes.
    const auto& concat = multi_->concatenated();
    std::ostringstream fastq;
    int id = 0;
    for (std::size_t b = 1; b < multi_->sequence_count(); ++b) {
        const std::uint32_t join = multi_->starts()[b];
        for (const std::uint32_t back : {40u, 20u, 5u}) {
            std::vector<std::uint8_t> codes(80);
            concat.sequence().extract(join - back, 80, codes.data());
            static const char kBases[] = "ACGT";
            fastq << "@join" << id++ << "\n";
            for (const std::uint8_t c : codes) fastq << kBases[c];
            fastq << "\n+\n" << std::string(80, 'I') << "\n";
        }
    }
    auto mono = pipeline::MappingSession::from_multi(
        genomics::MultiReference(*multi_));
    auto sharded =
        pipeline::MappingSession::from_rix(built_->manifest_path);
    pipeline::SamEmitter::Stats mono_stats;
    pipeline::SamEmitter::Stats sharded_stats;
    const std::string a =
        map_single(*mono, fastq.str(), 2, &mono_stats);
    const std::string b =
        map_single(*sharded, fastq.str(), 2, &sharded_stats);
    EXPECT_EQ(a, b);
    EXPECT_EQ(mono_stats.dropped_boundary, sharded_stats.dropped_boundary);
    EXPECT_GT(mono_stats.dropped_boundary, 0u)
        << "fixture failed to produce straddling mappings";
    EXPECT_EQ(mono_stats.records, sharded_stats.records);
}

} // namespace
} // namespace repute
