// Approximate backward search: completeness against brute-force
// Hamming-neighborhood enumeration, disjointness of hit ranges, node
// budgets, and the error-budget growth that drives the Yara cost model.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "genomics/genome_sim.hpp"
#include "index/approx_search.hpp"
#include "index/fm_index.hpp"
#include "util/prng.hpp"

namespace {

using repute::genomics::GenomeSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::index::approximate_search;
using repute::index::ApproxSearchStats;
using repute::index::FmIndex;
using repute::util::PackedDna;
using repute::util::Xoshiro256;

class ApproxSearchTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig config;
        config.length = 80'000;
        config.seed = 17;
        reference_ = new Reference(simulate_genome(config));
        fm_ = new FmIndex(*reference_, 4);
        text_ = new std::string(reference_->sequence().to_string());
    }
    static void TearDownTestSuite() {
        delete text_;
        delete fm_;
        delete reference_;
        text_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    /// Brute force: positions where text matches pattern within
    /// Hamming distance e.
    static std::set<std::uint32_t> hamming_matches(
        const std::vector<std::uint8_t>& pattern, std::uint32_t e) {
        std::set<std::uint32_t> out;
        const auto& text = *text_;
        for (std::size_t p = 0; p + pattern.size() <= text.size(); ++p) {
            std::uint32_t mismatches = 0;
            for (std::size_t i = 0;
                 i < pattern.size() && mismatches <= e; ++i) {
                mismatches += repute::util::base_to_code(text[p + i]) !=
                                      pattern[i]
                                  ? 1
                                  : 0;
            }
            if (mismatches <= e) {
                out.insert(static_cast<std::uint32_t>(p));
            }
        }
        return out;
    }

    static std::set<std::uint32_t> locate_all(
        const std::vector<repute::index::ApproxHit>& hits) {
        std::set<std::uint32_t> out;
        std::vector<std::uint32_t> positions;
        for (const auto& hit : hits) {
            positions.clear();
            fm_->locate_range(hit.range, hit.range.count(), positions);
            out.insert(positions.begin(), positions.end());
        }
        return out;
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static std::string* text_;
};

Reference* ApproxSearchTest::reference_ = nullptr;
FmIndex* ApproxSearchTest::fm_ = nullptr;
std::string* ApproxSearchTest::text_ = nullptr;

TEST_F(ApproxSearchTest, ZeroErrorsEqualsExactSearch) {
    Xoshiro256 rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t pos = rng.bounded(reference_->size() - 20);
        const auto pattern = reference_->sequence().extract(pos, 20);
        const auto hits = approximate_search(*fm_, pattern, 0);
        ASSERT_EQ(hits.size(), 1u);
        EXPECT_EQ(hits[0].errors, 0u);
        EXPECT_EQ(hits[0].range, fm_->search(pattern));
    }
}

class ApproxSweep : public ApproxSearchTest,
                    public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(ApproxSweep, FindsExactlyTheHammingNeighborhood) {
    const std::uint32_t e = GetParam();
    Xoshiro256 rng(100 + e);
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t len = 14 + rng.bounded(8);
        const std::size_t pos = rng.bounded(reference_->size() - len);
        auto pattern = reference_->sequence().extract(pos, len);
        // Mutate up to e bases so the planted position needs errors.
        for (std::uint32_t m = 0; m < e; ++m) {
            const std::size_t at = rng.bounded(len);
            pattern[at] =
                static_cast<std::uint8_t>((pattern[at] + 1) & 3);
        }
        const auto hits = approximate_search(*fm_, pattern, e);
        EXPECT_EQ(locate_all(hits), hamming_matches(pattern, e))
            << "e=" << e << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, ApproxSweep,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST_F(ApproxSearchTest, HitRangesAreDisjoint) {
    Xoshiro256 rng(5);
    const std::size_t pos = rng.bounded(reference_->size() - 16);
    const auto pattern = reference_->sequence().extract(pos, 16);
    const auto hits = approximate_search(*fm_, pattern, 2);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
    for (const auto& hit : hits) {
        intervals.emplace_back(hit.range.lo, hit.range.hi);
    }
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
        EXPECT_LE(intervals[i - 1].second, intervals[i].first)
            << "overlapping ranges at " << i;
    }
}

TEST_F(ApproxSearchTest, ErrorCountsAreMinimalForPlantedPattern) {
    // A pattern present exactly must be reported with errors == 0 among
    // its hits.
    const auto pattern = reference_->sequence().extract(777, 18);
    const auto hits = approximate_search(*fm_, pattern, 2);
    bool found_exact = false;
    for (const auto& hit : hits) {
        if (hit.errors == 0) {
            found_exact = true;
            EXPECT_EQ(hit.range, fm_->search(pattern));
        }
    }
    EXPECT_TRUE(found_exact);
}

TEST_F(ApproxSearchTest, NodeBudgetTruncatesAndReports) {
    const auto pattern = reference_->sequence().extract(123, 24);
    ApproxSearchStats stats;
    (void)approximate_search(*fm_, pattern, 3, &stats, /*budget=*/50);
    EXPECT_TRUE(stats.budget_exhausted);
    EXPECT_LE(stats.visited_nodes, 50u);
}

TEST_F(ApproxSearchTest, VisitedNodesGrowWithBudget) {
    const auto pattern = reference_->sequence().extract(4321, 24);
    std::uint64_t previous = 0;
    for (const std::uint32_t e : {0u, 1u, 2u, 3u}) {
        ApproxSearchStats stats;
        (void)approximate_search(*fm_, pattern, e, &stats);
        EXPECT_GT(stats.visited_nodes, previous) << "e=" << e;
        previous = stats.visited_nodes;
    }
}

} // namespace
