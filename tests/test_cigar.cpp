// CIGAR annotation (the paper's future-work extension) and per-stage
// kernel accounting.

#include <gtest/gtest.h>

#include <string>

#include "core/cigar.hpp"
#include "core/kernels.hpp"
#include "core/repute_mapper.hpp"
#include "filter/memopt_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/platform.hpp"

namespace {

using repute::core::annotate_mapping;
using repute::core::KernelConfig;
using repute::core::ReadMapping;
using repute::core::StageTotals;
using repute::core::to_sam_with_cigar;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::SimulatedReads;
using repute::genomics::Strand;
using repute::index::FmIndex;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;

DeviceProfile test_profile() {
    DeviceProfile p;
    p.name = "cigar-cpu";
    p.compute_units = 4;
    p.ops_per_unit_per_second = 1e9;
    p.global_memory_bytes = 1ULL << 30;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

class CigarTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 100'000;
        gconfig.seed = 9;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);

        ReadSimConfig rconfig;
        rconfig.n_reads = 120;
        rconfig.read_length = 100;
        rconfig.max_errors = 4;
        rconfig.seed = 11;
        sim_ = new SimulatedReads(simulate_reads(*reference_, rconfig));
    }
    static void TearDownTestSuite() {
        delete sim_;
        delete fm_;
        delete reference_;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    /// Read-consumed length from a CIGAR: M and I ops.
    static std::size_t cigar_read_length(const std::string& cigar) {
        std::size_t consumed = 0, num = 0;
        for (const char c : cigar) {
            if (c >= '0' && c <= '9') {
                num = num * 10 + static_cast<std::size_t>(c - '0');
            } else {
                if (c == 'M' || c == 'I') consumed += num;
                num = 0;
            }
        }
        return consumed;
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedReads* sim_;
};

Reference* CigarTest::reference_ = nullptr;
FmIndex* CigarTest::fm_ = nullptr;
SimulatedReads* CigarTest::sim_ = nullptr;

TEST_F(CigarTest, ExactReadGetsAllMatchCigar) {
    repute::genomics::Read read;
    read.codes = reference_->sequence().extract(2000, 100);
    ReadMapping mapping;
    mapping.position = 2000;
    mapping.edit_distance = 0;
    mapping.strand = Strand::Forward;
    const auto annotated =
        annotate_mapping(*reference_, read, mapping, 3);
    ASSERT_TRUE(annotated.has_value());
    EXPECT_EQ(annotated->cigar, "100M");
    EXPECT_EQ(annotated->precise_position, 2000u);
    EXPECT_EQ(annotated->mapping.edit_distance, 0u);
}

TEST_F(CigarTest, ReverseStrandAnnotation) {
    repute::genomics::Read read;
    const auto fwd = reference_->sequence().extract(5000, 100);
    read.codes.assign(fwd.rbegin(), fwd.rend());
    for (auto& b : read.codes) b = repute::util::complement_code(b);

    ReadMapping mapping;
    mapping.position = 5000;
    mapping.strand = Strand::Reverse;
    const auto annotated =
        annotate_mapping(*reference_, read, mapping, 3);
    ASSERT_TRUE(annotated.has_value());
    EXPECT_EQ(annotated->cigar, "100M");
    EXPECT_EQ(annotated->precise_position, 5000u);
}

TEST_F(CigarTest, UnalignableMappingRejected) {
    repute::genomics::Read read;
    read.codes.assign(100, 0); // poly-A
    ReadMapping mapping;
    mapping.position = 2000;
    mapping.strand = Strand::Forward;
    // Unless position 2000 happens to be ~poly-A (it is random), the
    // re-alignment cannot reach distance <= 1.
    const auto annotated =
        annotate_mapping(*reference_, read, mapping, 1);
    EXPECT_FALSE(annotated.has_value());
}

TEST_F(CigarTest, EndToEndSamWithCigar) {
    Device dev(test_profile());
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{&dev, 1.0}});
    const auto result = mapper->map(sim_->batch, 4);

    std::size_t dropped = 0;
    const auto sam = to_sam_with_cigar(sim_->batch, result, *reference_,
                                       4, &dropped);
    EXPECT_EQ(dropped, 0u) << "kernel mappings must all re-align";

    std::size_t mapped_records = 0;
    for (const auto& rec : sam) {
        if (rec.unmapped()) continue;
        ++mapped_records;
        // Every CIGAR consumes exactly the read length.
        EXPECT_EQ(cigar_read_length(rec.cigar), 100u) << rec.cigar;
        EXPECT_LE(rec.edit_distance, 4u);
        EXPECT_GE(rec.pos, 1u);
    }
    EXPECT_GT(mapped_records, sim_->batch.size() / 2);
}

TEST_F(CigarTest, PrecisePositionMatchesOriginForCleanReads) {
    Device dev(test_profile());
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{&dev, 1.0}});
    const auto result = mapper->map(sim_->batch, 4);
    std::size_t checked = 0;
    for (std::size_t i = 0; i < sim_->batch.size(); ++i) {
        if (sim_->origins[i].edits != 0) continue; // exact reads only
        for (const auto& m : result.per_read[i]) {
            if (m.edit_distance != 0) continue;
            const auto a = annotate_mapping(
                *reference_, sim_->batch.reads[i], m, 4);
            ASSERT_TRUE(a.has_value());
            if (a->precise_position == sim_->origins[i].position) {
                ++checked;
                break;
            }
        }
    }
    EXPECT_GT(checked, 0u);
}

// ------------------------------------------------------- stage totals

TEST_F(CigarTest, StageTotalsSumToKernelOps) {
    const repute::filter::MemoryOptimizedSeeder seeder(12);
    KernelConfig config;
    std::vector<ReadMapping> out;
    StageTotals stages;
    const auto ops = repute::core::map_read_workitem(
        *fm_, *reference_, seeder, sim_->batch.reads[0], 4, config, out,
        &stages);
    EXPECT_EQ(ops, stages.total_ops());
    EXPECT_GT(stages.filtration_ops, 0u);
    EXPECT_GT(stages.verify_ops, 0u);
}

TEST_F(CigarTest, DeviceRunsCarryStageBreakdown) {
    Device dev(test_profile());
    auto repute_mapper = repute::core::make_repute(*reference_, *fm_,
                                                   {{&dev, 1.0}});
    const auto result = repute_mapper->map(sim_->batch, 4);
    ASSERT_EQ(result.device_runs.size(), 1u);
    const auto& run = result.device_runs[0];
    EXPECT_EQ(run.stage.filtration_ops + run.stage.locate_ops +
                  run.stage.verify_ops,
              run.stats.total_ops);
    EXPECT_GT(run.stage.candidates, 0u);
}

TEST_F(CigarTest, StreamingFlowVerifiesMoreThanCollapsedFlow) {
    Device dev(test_profile());
    auto repute_mapper = repute::core::make_repute(*reference_, *fm_,
                                                   {{&dev, 1.0}});
    auto coral_mapper = repute::core::make_coral(*reference_, *fm_,
                                                 {{&dev, 1.0}});
    const auto repute_result = repute_mapper->map(sim_->batch, 4);
    const auto coral_result = coral_mapper->map(sim_->batch, 4);
    // CORAL re-verifies windows shared by several seeds.
    EXPECT_GT(coral_result.device_runs[0].stage.candidates,
              repute_result.device_runs[0].stage.candidates);
}

} // namespace
