// genomics: sequences, FASTA/FASTQ round trips, the genome simulator's
// statistical contracts, the read simulator's ground-truth guarantee,
// and SAM-lite I/O.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "align/edit_distance.hpp"
#include "genomics/fastx.hpp"
#include "genomics/spectrum.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "genomics/sam_lite.hpp"
#include "genomics/sequence.hpp"

namespace {

using repute::genomics::FastaRecord;
using repute::genomics::FastqRecord;
using repute::genomics::GenomeSimConfig;
using repute::genomics::Read;
using repute::genomics::read_fasta;
using repute::genomics::read_fastq;
using repute::genomics::read_sam;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::SamRecord;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::Strand;
using repute::genomics::to_read_batch;
using repute::genomics::write_fasta;
using repute::genomics::write_fastq;
using repute::genomics::write_sam;

// -------------------------------------------------------------- Sequence

TEST(Sequence, ReadRoundTripAndReverseComplement) {
    Read read;
    read.codes = {0, 0, 1, 2, 3}; // AACGT
    EXPECT_EQ(read.to_string(), "AACGT");
    const auto rc = read.reverse_complement();
    Read rc_read;
    rc_read.codes = rc;
    EXPECT_EQ(rc_read.to_string(), "ACGTT");
}

TEST(Sequence, ReferenceFromAsciiHandlesN) {
    const auto ref = Reference::from_ascii("chr", "ACGTNNNNACGT");
    EXPECT_EQ(ref.size(), 12u);
    // Ns become deterministic bases: same seed, same result.
    const auto ref2 = Reference::from_ascii("chr", "ACGTNNNNACGT");
    EXPECT_EQ(ref.sequence().to_string(), ref2.sequence().to_string());
    EXPECT_EQ(ref.sequence().to_string().substr(0, 4), "ACGT");
}

// ----------------------------------------------------------------- FASTA

TEST(Fasta, ParsesMultiRecordMultiLine) {
    std::istringstream in(">chr1 description here\nACGT\nACGT\n"
                          ";comment\n>chr2\nTTTT\n");
    const auto records = read_fasta(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name, "chr1");
    EXPECT_EQ(records[0].sequence, "ACGTACGT");
    EXPECT_EQ(records[1].name, "chr2");
    EXPECT_EQ(records[1].sequence, "TTTT");
}

TEST(Fasta, RejectsSequenceBeforeHeader) {
    std::istringstream in("ACGT\n>chr1\nACGT\n");
    EXPECT_THROW((void)read_fasta(in), std::runtime_error);
}

TEST(Fasta, WriteReadRoundTrip) {
    const std::vector<FastaRecord> records = {
        {"a", std::string(150, 'A')}, {"b", "ACGT"}};
    std::stringstream io;
    write_fasta(io, records, 60);
    const auto parsed = read_fasta(io);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].sequence, records[0].sequence);
    EXPECT_EQ(parsed[1].sequence, records[1].sequence);
}

// ----------------------------------------------------------------- FASTQ

TEST(Fastq, ParsesAndValidates) {
    std::istringstream in("@r1\nACGT\n+\nIIII\n@r2 extra\nTT\n+r2\nII\n");
    const auto records = read_fastq(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name, "r1");
    EXPECT_EQ(records[0].sequence, "ACGT");
    EXPECT_EQ(records[1].name, "r2");
}

TEST(Fastq, RejectsTruncatedAndMismatched) {
    std::istringstream truncated("@r1\nACGT\n+\n");
    EXPECT_THROW((void)read_fastq(truncated), std::runtime_error);
    std::istringstream mismatched("@r1\nACGT\n+\nII\n");
    EXPECT_THROW((void)read_fastq(mismatched), std::runtime_error);
    std::istringstream no_plus("@r1\nACGT\nX\nIIII\n");
    EXPECT_THROW((void)read_fastq(no_plus), std::runtime_error);
}

TEST(Fastq, RoundTripAndBatchConversion) {
    std::vector<FastqRecord> records = {
        {"a", "ACGTACGT", "IIIIIIII"},
        {"b", "TTTTAAAA", "IIIIIIII"},
        {"short", "ACG", "III"}, // dropped: minority length
    };
    std::stringstream io;
    write_fastq(io, records);
    const auto parsed = read_fastq(io);
    ASSERT_EQ(parsed.size(), 3u);

    std::size_t dropped = 0;
    const auto batch = to_read_batch(parsed, &dropped);
    EXPECT_EQ(batch.read_length, 8u);
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_EQ(dropped, 1u);
    EXPECT_EQ(batch.reads[0].to_string(), "ACGTACGT");
    EXPECT_EQ(batch.reads[1].id, 1u);
}

// ------------------------------------------------------------ genome sim

TEST(GenomeSim, RespectsLengthAndDeterminism) {
    GenomeSimConfig config;
    config.length = 30'000;
    config.seed = 5;
    const auto a = simulate_genome(config);
    const auto b = simulate_genome(config);
    EXPECT_EQ(a.size(), 30'000u);
    EXPECT_EQ(a.sequence(), b.sequence());

    config.seed = 6;
    const auto c = simulate_genome(config);
    EXPECT_NE(a.sequence(), c.sequence());
}

TEST(GenomeSim, GcContentNearTarget) {
    GenomeSimConfig config;
    config.length = 200'000;
    config.gc_content = 0.41;
    const auto ref = simulate_genome(config);
    std::size_t gc = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        const auto code = ref.code_at(i);
        gc += (code == 1 || code == 2) ? 1 : 0;
    }
    const double fraction = static_cast<double>(gc) / ref.size();
    EXPECT_NEAR(fraction, 0.41, 0.04);
}

TEST(GenomeSim, RepeatsSkewKmerSpectrum) {
    // With interspersed repeats, some k-mers must be much more frequent
    // than the Poisson background would allow.
    GenomeSimConfig config;
    config.length = 150'000;
    config.interspersed_fraction = 0.45;
    const auto ref = simulate_genome(config);

    std::map<std::uint64_t, std::uint32_t> spectrum;
    std::uint64_t kmer = 0;
    const std::uint32_t k = 12;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        kmer = ((kmer << 2) | ref.code_at(i)) & ((1ULL << (2 * k)) - 1);
        if (i + 1 >= k) ++spectrum[kmer];
    }
    std::uint32_t max_count = 0;
    for (const auto& [key, count] : spectrum) {
        max_count = std::max(max_count, count);
    }
    // Background expectation is ~150k/16.7M << 1 per k-mer; repeats
    // should push some k-mer into double digits.
    EXPECT_GE(max_count, 10u);
}

TEST(GenomeSim, RejectsDegenerateConfigs) {
    GenomeSimConfig config;
    config.length = 0;
    EXPECT_THROW((void)simulate_genome(config), std::invalid_argument);
    config.length = 1000;
    config.interspersed_fraction = 0.9;
    config.tandem_fraction = 0.2;
    EXPECT_THROW((void)simulate_genome(config), std::invalid_argument);
}

// -------------------------------------------------------------- spectrum

TEST(Spectrum, HandComputedSmallCase) {
    // "AAAAAAAA": one distinct 4-mer occurring 5 times.
    const auto ref = Reference::from_ascii("t", "AAAAAAAA");
    const auto s = repute::genomics::kmer_spectrum(ref, 4);
    EXPECT_EQ(s.total_kmers, 5u);
    EXPECT_EQ(s.distinct_kmers, 1u);
    EXPECT_EQ(s.max_frequency, 5u);
    EXPECT_DOUBLE_EQ(s.mean_frequency, 5.0);
    EXPECT_DOUBLE_EQ(s.repetitive_fraction, 1.0); // 5 > 4
}

TEST(Spectrum, ProfileMatchesSummary) {
    GenomeSimConfig config;
    config.length = 50'000;
    const auto ref = simulate_genome(config);
    const auto summary = repute::genomics::kmer_spectrum(ref, 10);
    const auto profile =
        repute::genomics::kmer_frequency_profile(ref, 10);
    ASSERT_EQ(profile.size(), summary.total_kmers);
    const auto max_in_profile =
        *std::max_element(profile.begin(), profile.end());
    EXPECT_EQ(max_in_profile, summary.max_frequency);
    // Every position's k-mer occurs at least once (itself).
    for (const auto f : profile) EXPECT_GE(f, 1u);
}

TEST(Spectrum, RepeatRichGenomeIsHeavyTailed) {
    GenomeSimConfig repeat_rich;
    repeat_rich.length = 120'000;
    repeat_rich.interspersed_fraction = 0.5;
    repeat_rich.repeat_divergence = 0.02;
    GenomeSimConfig plain = repeat_rich;
    plain.interspersed_fraction = 0.0;
    plain.tandem_fraction = 0.0;

    const auto rich =
        repute::genomics::kmer_spectrum(simulate_genome(repeat_rich), 12);
    const auto flat =
        repute::genomics::kmer_spectrum(simulate_genome(plain), 12);
    EXPECT_GT(rich.repetitive_fraction, 5 * flat.repetitive_fraction);
    EXPECT_GT(rich.max_frequency, 4 * flat.max_frequency);
}

TEST(Spectrum, RejectsBadParameters) {
    const auto ref = Reference::from_ascii("t", "ACGTACGT");
    EXPECT_THROW((void)repute::genomics::kmer_spectrum(ref, 3),
                 std::invalid_argument);
    EXPECT_THROW((void)repute::genomics::kmer_spectrum(ref, 15),
                 std::invalid_argument);
    EXPECT_THROW((void)repute::genomics::kmer_spectrum(ref, 9),
                 std::invalid_argument); // longer than the text
}

// -------------------------------------------------------------- read sim

TEST(ReadSim, GroundTruthWithinEditBudget) {
    GenomeSimConfig gconfig;
    gconfig.length = 60'000;
    const auto ref = simulate_genome(gconfig);

    ReadSimConfig rconfig;
    rconfig.n_reads = 200;
    rconfig.read_length = 100;
    rconfig.max_errors = 5;
    const auto sim = simulate_reads(ref, rconfig);
    ASSERT_EQ(sim.batch.size(), 200u);
    ASSERT_EQ(sim.origins.size(), 200u);

    for (std::size_t i = 0; i < sim.batch.size(); ++i) {
        const auto& read = sim.batch.reads[i];
        const auto& origin = sim.origins[i];
        ASSERT_EQ(read.length(), 100u);
        EXPECT_LE(origin.edits, 5u);

        // The read (in forward orientation) must align to its origin
        // window within the budget.
        const auto window = ref.sequence().extract(
            origin.position, rconfig.read_length + rconfig.max_errors);
        const std::vector<std::uint8_t> query =
            origin.strand == Strand::Reverse ? read.reverse_complement()
                                             : read.codes;
        const auto distance =
            repute::align::semiglobal_distance(query, window);
        EXPECT_LE(distance, origin.edits)
            << "read " << i << " strand "
            << repute::genomics::strand_char(origin.strand);
    }
}

TEST(ReadSim, DeterministicAndSeedSensitive) {
    GenomeSimConfig gconfig;
    gconfig.length = 20'000;
    const auto ref = simulate_genome(gconfig);
    ReadSimConfig rconfig;
    rconfig.n_reads = 50;
    const auto a = simulate_reads(ref, rconfig);
    const auto b = simulate_reads(ref, rconfig);
    EXPECT_EQ(a.batch.reads[7].codes, b.batch.reads[7].codes);
    rconfig.seed = 999;
    const auto c = simulate_reads(ref, rconfig);
    bool any_diff = false;
    for (std::size_t i = 0; i < 50; ++i) {
        any_diff |= a.batch.reads[i].codes != c.batch.reads[i].codes;
    }
    EXPECT_TRUE(any_diff);
}

TEST(ReadSim, QualityModelProducesRampAndBudget) {
    GenomeSimConfig gconfig;
    gconfig.length = 80'000;
    const auto ref = simulate_genome(gconfig);

    ReadSimConfig rconfig;
    rconfig.n_reads = 400;
    rconfig.read_length = 100;
    rconfig.max_errors = 5;
    rconfig.quality_model = true;
    rconfig.phred_start = 38.0;
    rconfig.phred_end = 15.0; // strong ramp so the 3' bias is visible
    const auto sim = simulate_reads(ref, rconfig);

    std::uint64_t total_errors = 0;
    for (std::size_t i = 0; i < sim.batch.size(); ++i) {
        const auto& read = sim.batch.reads[i];
        ASSERT_EQ(read.quality.size(), 100u);
        EXPECT_LE(sim.origins[i].edits, 5u);
        total_errors += sim.origins[i].edits;
        // Phred+33 characters in the modeled range.
        for (const char c : read.quality) {
            EXPECT_GE(c, 33 + 2);
            EXPECT_LE(c, 33 + 41);
        }
        // Forward reads: quality descends along the read.
        if (sim.origins[i].strand == Strand::Forward) {
            EXPECT_GT(read.quality.front(), read.quality.back());
        } else {
            EXPECT_LT(read.quality.front(), read.quality.back());
        }
    }
    // With phred 38->15 the mean per-base error probability is ~1%,
    // so ~1-2 errors/read on average; definitely nonzero.
    EXPECT_GT(total_errors, sim.batch.size() / 2);
}

TEST(ReadSim, QualityReadsRemainMappableWithinBudget) {
    GenomeSimConfig gconfig;
    gconfig.length = 60'000;
    const auto ref = simulate_genome(gconfig);
    ReadSimConfig rconfig;
    rconfig.n_reads = 100;
    rconfig.read_length = 100;
    rconfig.max_errors = 5;
    rconfig.quality_model = true;
    const auto sim = simulate_reads(ref, rconfig);
    for (std::size_t i = 0; i < sim.batch.size(); ++i) {
        const auto window = ref.sequence().extract(
            sim.origins[i].position,
            rconfig.read_length + rconfig.max_errors);
        const auto query =
            sim.origins[i].strand == Strand::Reverse
                ? sim.batch.reads[i].reverse_complement()
                : sim.batch.reads[i].codes;
        EXPECT_LE(repute::align::semiglobal_distance(query, window),
                  sim.origins[i].edits);
    }
}

TEST(ReadSim, ToFastqRecordsRoundTrip) {
    GenomeSimConfig gconfig;
    gconfig.length = 30'000;
    const auto ref = simulate_genome(gconfig);
    ReadSimConfig rconfig;
    rconfig.n_reads = 50;
    rconfig.read_length = 80;
    rconfig.quality_model = true;
    const auto sim = simulate_reads(ref, rconfig);

    const auto records = repute::genomics::to_fastq_records(sim);
    ASSERT_EQ(records.size(), 50u);
    std::size_t dropped = 0;
    const auto batch = to_read_batch(records, &dropped);
    EXPECT_EQ(dropped, 0u);
    ASSERT_EQ(batch.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(batch.reads[i].codes, sim.batch.reads[i].codes);
    }
}

TEST(ReadSim, RejectsTooShortReference) {
    const auto ref = Reference::from_ascii("tiny", "ACGTACGT");
    ReadSimConfig config;
    config.read_length = 100;
    EXPECT_THROW((void)simulate_reads(ref, config), std::invalid_argument);
}

// -------------------------------------------------------------- SAM-lite

TEST(SamLite, WriteReadRoundTrip) {
    std::vector<SamRecord> records(2);
    records[0].qname = "r1";
    records[0].rname = "chr21";
    records[0].pos = 1234;
    records[0].cigar = "100M";
    records[0].edit_distance = 3;
    records[1].qname = "r2";
    records[1].flag = SamRecord::kFlagUnmapped;
    records[1].rname = "*";

    std::stringstream io;
    write_sam(io, "chr21", 46'709'983, records);
    const auto parsed = read_sam(io);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].qname, "r1");
    EXPECT_EQ(parsed[0].pos, 1234u);
    EXPECT_EQ(parsed[0].edit_distance, 3u);
    EXPECT_EQ(parsed[0].cigar, "100M");
    EXPECT_TRUE(parsed[1].unmapped());
}

TEST(SamLite, StrandFlag) {
    SamRecord rec;
    EXPECT_EQ(rec.strand(), Strand::Forward);
    rec.flag |= SamRecord::kFlagReverse;
    EXPECT_EQ(rec.strand(), Strand::Reverse);
}

TEST(SamLite, RejectsMalformedLines) {
    std::istringstream in("r1\t0\tchr\n");
    EXPECT_THROW((void)read_sam(in), std::runtime_error);
}

} // namespace
