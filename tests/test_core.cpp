// core: the REPUTE kernel and host end-to-end — simulated reads must be
// recovered at their true origins, first-n semantics, multi-device
// splits, memory-ceiling chunking, accuracy protocols, SAM export.

#include <gtest/gtest.h>

#include <memory>

#include "core/accuracy.hpp"
#include "core/kernels.hpp"
#include "core/mapping.hpp"
#include "core/report.hpp"
#include "core/repute_mapper.hpp"
#include "filter/memopt_seeder.hpp"
#include "filter/uniform_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/platform.hpp"

namespace {

using repute::core::AccuracyConfig;
using repute::core::all_locations_accuracy;
using repute::core::any_best_accuracy;
using repute::core::contains_mapping;
using repute::core::DeviceShare;
using repute::core::KernelConfig;
using repute::core::make_coral;
using repute::core::make_repute;
using repute::core::MapResult;
using repute::core::ReadMapping;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::SimulatedReads;
using repute::genomics::Strand;
using repute::index::FmIndex;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;

DeviceProfile fast_test_profile(const char* name = "test-cpu") {
    DeviceProfile p;
    p.name = name;
    p.compute_units = 8;
    p.ops_per_unit_per_second = 1e9;
    p.global_memory_bytes = 1ULL << 30;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

class CoreTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 200'000;
        gconfig.seed = 21;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);

        ReadSimConfig rconfig;
        rconfig.n_reads = 250;
        rconfig.read_length = 100;
        rconfig.max_errors = 5;
        rconfig.seed = 500;
        sim_ = new SimulatedReads(simulate_reads(*reference_, rconfig));
    }
    static void TearDownTestSuite() {
        delete sim_;
        delete fm_;
        delete reference_;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    /// Fraction of simulated reads whose true origin appears in the
    /// result (position within tolerance, matching strand).
    static double origin_recovery(const MapResult& result,
                                  std::uint32_t tolerance) {
        std::size_t recovered = 0;
        for (std::size_t i = 0; i < sim_->batch.size(); ++i) {
            ReadMapping truth;
            truth.position = sim_->origins[i].position;
            truth.strand = sim_->origins[i].strand;
            if (contains_mapping(result.per_read[i], truth, tolerance)) {
                ++recovered;
            }
        }
        return static_cast<double>(recovered) /
               static_cast<double>(sim_->batch.size());
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedReads* sim_;
};

Reference* CoreTest::reference_ = nullptr;
FmIndex* CoreTest::fm_ = nullptr;
SimulatedReads* CoreTest::sim_ = nullptr;

// -------------------------------------------------------------- kernels

TEST_F(CoreTest, WorkItemRecoversExactRead) {
    const repute::filter::MemoryOptimizedSeeder seeder(12);
    KernelConfig config;
    config.s_min = 12;
    std::vector<ReadMapping> out;

    repute::genomics::Read read;
    read.codes = reference_->sequence().extract(5000, 100);
    const auto ops = repute::core::map_read_workitem(
        *fm_, *reference_, seeder, read, 5, config, out);
    EXPECT_GT(ops, 0u);
    ASSERT_FALSE(out.empty());
    ReadMapping truth;
    truth.position = 5000;
    truth.strand = Strand::Forward;
    EXPECT_TRUE(contains_mapping(out, truth, 5));
    // The exact read must have a zero-distance mapping.
    bool zero = false;
    for (const auto& m : out) zero |= (m.edit_distance == 0);
    EXPECT_TRUE(zero);
}

TEST_F(CoreTest, WorkItemFindsReverseStrand) {
    const repute::filter::MemoryOptimizedSeeder seeder(12);
    KernelConfig config;
    std::vector<ReadMapping> out;

    repute::genomics::Read read;
    const auto fwd = reference_->sequence().extract(7000, 100);
    read.codes.assign(fwd.rbegin(), fwd.rend());
    for (auto& b : read.codes) b = repute::util::complement_code(b);

    repute::core::map_read_workitem(*fm_, *reference_, seeder, read, 4,
                                    config, out);
    ReadMapping truth;
    truth.position = 7000;
    truth.strand = Strand::Reverse;
    EXPECT_TRUE(contains_mapping(out, truth, 4));
}

TEST_F(CoreTest, ScratchGrowsAsSminShrinks) {
    const repute::filter::MemoryOptimizedSeeder tight(20);
    const repute::filter::MemoryOptimizedSeeder loose(10);
    EXPECT_LT(repute::core::kernel_scratch_bytes(tight, 150, 5),
              repute::core::kernel_scratch_bytes(loose, 150, 5));
}

// ---------------------------------------------------------- end-to-end

TEST_F(CoreTest, ReputeRecoversSimulatedOrigins) {
    Device dev(fast_test_profile());
    auto mapper = make_repute(*reference_, *fm_, {{&dev, 1.0}});
    const auto result = mapper->map(sim_->batch, 5);
    EXPECT_GE(origin_recovery(result, 5), 0.99);
    EXPECT_GT(result.mapping_seconds, 0.0);
    ASSERT_EQ(result.device_runs.size(), 1u);
    EXPECT_EQ(result.device_runs[0].reads, sim_->batch.size());
}

TEST_F(CoreTest, CoralRecoversSimulatedOrigins) {
    Device dev(fast_test_profile());
    auto mapper = make_coral(*reference_, *fm_, {{&dev, 1.0}});
    const auto result = mapper->map(sim_->batch, 5);
    EXPECT_GE(origin_recovery(result, 5), 0.99);
}

TEST_F(CoreTest, FirstNCapRespected) {
    Device dev(fast_test_profile());
    repute::core::HeterogeneousMapperConfig config;
    config.kernel.max_locations_per_read = 3;
    auto mapper =
        make_repute(*reference_, *fm_, {{&dev, 1.0}}, config);
    const auto result = mapper->map(sim_->batch, 5);
    for (const auto& mappings : result.per_read) {
        EXPECT_LE(mappings.size(), 3u);
    }
}

TEST_F(CoreTest, MultiDeviceMatchesSingleDevice) {
    Device a(fast_test_profile("dev-a"));
    Device b(fast_test_profile("dev-b"));
    auto single = make_repute(*reference_, *fm_, {{&a, 1.0}});
    auto dual =
        make_repute(*reference_, *fm_, {{&a, 0.5}, {&b, 0.5}});

    const auto r1 = single->map(sim_->batch, 4);
    const auto r2 = dual->map(sim_->batch, 4);
    ASSERT_EQ(r1.per_read.size(), r2.per_read.size());
    for (std::size_t i = 0; i < r1.per_read.size(); ++i) {
        EXPECT_EQ(r1.per_read[i], r2.per_read[i]) << "read " << i;
    }
    ASSERT_EQ(r2.device_runs.size(), 2u);
    EXPECT_EQ(r2.device_runs[0].reads + r2.device_runs[1].reads,
              sim_->batch.size());
    // Task-parallel: total time is the max, not the sum.
    EXPECT_NEAR(r2.mapping_seconds,
                std::max(r2.device_runs[0].stats.seconds,
                         r2.device_runs[1].stats.seconds),
                1e-12);
}

TEST_F(CoreTest, WorkloadSplitProportions) {
    Device a(fast_test_profile("dev-a"));
    Device b(fast_test_profile("dev-b"));
    Device c(fast_test_profile("dev-c"));
    auto mapper = make_repute(*reference_, *fm_,
                              {{&a, 0.8}, {&b, 0.1}, {&c, 0.1}});
    const auto counts = mapper->split_workload(1'000'000);
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0], 800'000u);
    EXPECT_EQ(counts[1], 100'000u);
    EXPECT_EQ(counts[2], 100'000u);
    EXPECT_EQ(counts[0] + counts[1] + counts[2], 1'000'000u);
}

TEST_F(CoreTest, WorkloadSplitDropsZeroFractionShares) {
    Device a(fast_test_profile("dev-a"));
    Device b(fast_test_profile("dev-b"));
    auto mapper =
        make_repute(*reference_, *fm_, {{&a, 1.0}, {&b, 0.0}});
    const auto counts = mapper->split_workload(100);
    // The zero share never reaches the split: one device, all reads.
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts[0], 100u);
}

TEST_F(CoreTest, WorkloadSplitNormalizesFractions) {
    Device a(fast_test_profile("dev-a"));
    Device b(fast_test_profile("dev-b"));
    // 2:6 must behave exactly like 0.25:0.75.
    auto mapper = make_repute(*reference_, *fm_, {{&a, 2.0}, {&b, 6.0}});
    const auto counts = mapper->split_workload(100);
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 25u);
    EXPECT_EQ(counts[1], 75u);
}

TEST_F(CoreTest, WorkloadSplitSingleShareTakesEverything) {
    Device a(fast_test_profile("dev-a"));
    auto mapper = make_repute(*reference_, *fm_, {{&a, 0.37}});
    const auto counts = mapper->split_workload(17);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts[0], 17u);
}

TEST_F(CoreTest, WorkloadSplitSmallerThanFleetConservesTotal) {
    Device a(fast_test_profile("dev-a"));
    Device b(fast_test_profile("dev-b"));
    Device c(fast_test_profile("dev-c"));
    auto mapper = make_repute(*reference_, *fm_,
                              {{&a, 1.0}, {&b, 1.0}, {&c, 1.0}});
    const auto counts = mapper->split_workload(2);
    ASSERT_EQ(counts.size(), 3u);
    std::size_t sum = 0;
    for (const auto n : counts) {
        EXPECT_LE(n, 2u);
        sum += n;
    }
    EXPECT_EQ(sum, 2u);
    // And the degenerate zero-read split stays all-zero.
    const auto empty = mapper->split_workload(0);
    for (const auto n : empty) EXPECT_EQ(n, 0u);
}

TEST_F(CoreTest, TinyDeviceMemoryForcesChunkingWithSameResults) {
    Device big(fast_test_profile("big"));
    DeviceProfile tiny_profile = fast_test_profile("tiny");
    // With a 1000-location output cap, 250 reads need ~2 MB of output
    // buffer — beyond the quarter ceiling of a 4 MiB device, forcing
    // several kernel invocations; the index image (rank blocks + q-gram
    // table + reference, ~0.6 MB here) still fits the ceiling.
    tiny_profile.global_memory_bytes = 4 * 1024 * 1024;
    Device tiny(tiny_profile);

    repute::core::HeterogeneousMapperConfig config;
    config.kernel.max_locations_per_read = 1000;
    auto ref_mapper =
        make_repute(*reference_, *fm_, {{&big, 1.0}}, config);
    auto tiny_mapper =
        make_repute(*reference_, *fm_, {{&tiny, 1.0}}, config);
    const auto r1 = ref_mapper->map(sim_->batch, 4);
    const auto r2 = tiny_mapper->map(sim_->batch, 4);
    for (std::size_t i = 0; i < r1.per_read.size(); ++i) {
        ASSERT_EQ(r1.per_read[i], r2.per_read[i]) << "read " << i;
    }
}

TEST_F(CoreTest, RejectsNullOrEmptyShares) {
    EXPECT_THROW(
        make_repute(*reference_, *fm_, {{nullptr, 1.0}}),
        std::invalid_argument);
    EXPECT_THROW(make_repute(*reference_, *fm_, {}),
                 std::invalid_argument);
}

TEST_F(CoreTest, EmptyBatchYieldsEmptyResult) {
    Device dev(fast_test_profile());
    auto mapper = make_repute(*reference_, *fm_, {{&dev, 1.0}});
    const auto result = mapper->map({}, 5);
    EXPECT_TRUE(result.per_read.empty());
    EXPECT_EQ(result.mapping_seconds, 0.0);
}

// ------------------------------------------------------------- accuracy

TEST_F(CoreTest, AccuracyProtocolsOnIdenticalResults) {
    Device dev(fast_test_profile());
    auto mapper = make_repute(*reference_, *fm_, {{&dev, 1.0}});
    const auto result = mapper->map(sim_->batch, 4);
    AccuracyConfig config;
    config.position_tolerance = 4;
    EXPECT_DOUBLE_EQ(all_locations_accuracy(result, result, config),
                     100.0);
    EXPECT_DOUBLE_EQ(any_best_accuracy(result, result, config), 100.0);
}

TEST_F(CoreTest, AccuracyDropsWhenMappingsRemoved) {
    Device dev(fast_test_profile());
    auto mapper = make_repute(*reference_, *fm_, {{&dev, 1.0}});
    const auto gold = mapper->map(sim_->batch, 4);
    MapResult crippled = gold;
    // Remove every mapping from half the reads.
    for (std::size_t i = 0; i < crippled.per_read.size(); i += 2) {
        crippled.per_read[i].clear();
    }
    AccuracyConfig config;
    config.position_tolerance = 4;
    EXPECT_LT(all_locations_accuracy(gold, crippled, config), 60.0);
    EXPECT_LT(any_best_accuracy(gold, crippled, config), 60.0);
    // Asymmetry: the crippled set as gold standard is fully covered.
    EXPECT_DOUBLE_EQ(all_locations_accuracy(crippled, gold, config),
                     100.0);
}

TEST_F(CoreTest, AccuracyRejectsSizeMismatch) {
    MapResult a, b;
    a.per_read.resize(3);
    b.per_read.resize(4);
    EXPECT_THROW((void)all_locations_accuracy(a, b, {}),
                 std::invalid_argument);
}

TEST(Accuracy, ContainsMappingToleranceEdges) {
    std::vector<ReadMapping> mappings;
    ReadMapping m;
    m.position = 100;
    m.strand = Strand::Forward;
    mappings.push_back(m);

    ReadMapping probe = m;
    probe.position = 105;
    EXPECT_TRUE(contains_mapping(mappings, probe, 5));
    probe.position = 106;
    EXPECT_FALSE(contains_mapping(mappings, probe, 5));
    probe.position = 95;
    EXPECT_TRUE(contains_mapping(mappings, probe, 5));
    probe.position = 100;
    probe.strand = Strand::Reverse;
    EXPECT_FALSE(contains_mapping(mappings, probe, 5));
}

TEST_F(CoreTest, StratifiedAccuracyPerErrorLevel) {
    Device dev(fast_test_profile());
    auto mapper = make_repute(*reference_, *fm_, {{&dev, 1.0}});
    const auto gold = mapper->map(sim_->batch, 5);

    AccuracyConfig config;
    config.position_tolerance = 5;
    const auto strata =
        repute::core::stratified_any_best_accuracy(gold, gold, config, 5);
    ASSERT_EQ(strata.size(), 6u);
    bool any_stratum = false;
    for (const double a : strata) {
        if (a >= 0) {
            EXPECT_DOUBLE_EQ(a, 100.0); // self-comparison is perfect
            any_stratum = true;
        }
    }
    EXPECT_TRUE(any_stratum);

    // Remove all distance >= 3 mappings from the test set: strata 0-2
    // stay perfect, the damaged strata drop.
    MapResult crippled = gold;
    for (auto& mappings : crippled.per_read) {
        std::erase_if(mappings, [](const ReadMapping& m) {
            return m.edit_distance >= 3;
        });
    }
    const auto damaged = repute::core::stratified_any_best_accuracy(
        gold, crippled, config, 5);
    for (int e = 0; e <= 2; ++e) {
        if (damaged[static_cast<std::size_t>(e)] >= 0) {
            EXPECT_DOUBLE_EQ(damaged[static_cast<std::size_t>(e)], 100.0);
        }
    }
    bool high_stratum_damaged = false;
    for (int e = 3; e <= 5; ++e) {
        const double a = damaged[static_cast<std::size_t>(e)];
        if (a >= 0 && a < 100.0) high_stratum_damaged = true;
    }
    EXPECT_TRUE(high_stratum_damaged);
}

TEST_F(CoreTest, BalancedSharesFollowThroughputAndScratch) {
    DeviceProfile cpu_profile = fast_test_profile("share-cpu");
    cpu_profile.compute_units = 8;
    cpu_profile.ops_per_unit_per_second = 1e9;
    DeviceProfile gpu_profile = fast_test_profile("share-gpu");
    gpu_profile.compute_units = 256;
    gpu_profile.ops_per_unit_per_second = 19e6; // 4.9e9 aggregate
    gpu_profile.private_memory_per_unit = 8 * 1024;
    gpu_profile.min_resident_items = 4;
    Device cpu(cpu_profile), gpu(gpu_profile);

    // Small scratch: shares proportional to raw throughput.
    auto shares = repute::core::balanced_shares({&cpu, &gpu}, 1024);
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_NEAR(shares[1].fraction / shares[0].fraction, 4.864 / 8.0,
                0.01);

    // Scratch at half occupancy: the GPU share halves.
    auto tight = repute::core::balanced_shares({&cpu, &gpu}, 4096);
    EXPECT_NEAR(tight[1].fraction / tight[0].fraction, 0.5 * 4.864 / 8.0,
                0.01);

    // Scratch beyond the GPU's private memory: GPU gets zero.
    auto over = repute::core::balanced_shares({&cpu, &gpu}, 16 * 1024);
    EXPECT_GT(over[0].fraction, 0.0);
    EXPECT_DOUBLE_EQ(over[1].fraction, 0.0);
}

TEST_F(CoreTest, FormatMapReportContainsKeyFacts) {
    Device dev(fast_test_profile());
    auto mapper = make_repute(*reference_, *fm_, {{&dev, 1.0}});
    const auto result = mapper->map(sim_->batch, 4);
    const auto report =
        repute::core::format_map_report(sim_->batch, result);
    EXPECT_NE(report.find("reads: 250"), std::string::npos) << report;
    EXPECT_NE(report.find("mappings/read:"), std::string::npos);
    EXPECT_NE(report.find(dev.name()), std::string::npos);
    EXPECT_NE(report.find("verify"), std::string::npos);
}

// ------------------------------------------------------------------ SAM

TEST_F(CoreTest, SamExportHasRecordPerMappingAndUnmappedReads) {
    Device dev(fast_test_profile());
    repute::core::HeterogeneousMapperConfig config;
    config.kernel.max_locations_per_read = 5;
    auto mapper =
        make_repute(*reference_, *fm_, {{&dev, 1.0}}, config);
    const auto result = mapper->map(sim_->batch, 3);
    const auto sam =
        repute::core::to_sam(sim_->batch, result, reference_->name());

    std::size_t expected = 0;
    for (const auto& m : result.per_read) {
        expected += m.empty() ? 1 : m.size();
    }
    EXPECT_EQ(sam.size(), expected);
    for (const auto& rec : sam) {
        if (!rec.unmapped()) {
            EXPECT_GE(rec.pos, 1u);
            EXPECT_LE(rec.edit_distance, 3u);
        }
    }
}

} // namespace
