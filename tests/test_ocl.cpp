// ocl runtime: device time model, occupancy, memory ceilings, queues and
// task-parallel overlap, platform calibration invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "ocl/context.hpp"
#include "ocl/device.hpp"
#include "ocl/platform.hpp"
#include "ocl/queue.hpp"

namespace {

using repute::ocl::Buffer;
using repute::ocl::CommandQueue;
using repute::ocl::Context;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;
using repute::ocl::DeviceType;
using repute::ocl::FaultPlan;
using repute::ocl::KernelLaunch;
using repute::ocl::OclError;
using repute::ocl::OclStatus;
using repute::ocl::Platform;

DeviceProfile test_profile(std::uint32_t units = 4,
                           double ops_per_unit = 1e6) {
    DeviceProfile p;
    p.name = "test-dev";
    p.compute_units = units;
    p.ops_per_unit_per_second = ops_per_unit;
    p.global_memory_bytes = 1 << 20; // 1 MiB
    p.private_memory_per_unit = 4096;
    p.min_resident_items = 1;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

// ---------------------------------------------------------------- Device

TEST(Device, ExecutesEveryWorkItem) {
    Device dev(test_profile());
    std::atomic<std::uint64_t> sum{0};
    const auto stats = dev.execute(
        1000,
        [&](std::size_t i) {
            sum += i;
            return std::uint64_t{1};
        },
        64);
    EXPECT_EQ(stats.items, 1000u);
    EXPECT_EQ(stats.total_ops, 1000u);
    EXPECT_EQ(sum.load(), 999u * 1000u / 2);
}

TEST(Device, TimeModelIsOpsOverThroughput) {
    Device dev(test_profile(4, 1e6)); // 4e6 ops/s aggregate
    const auto stats = dev.execute(
        100, [](std::size_t) { return std::uint64_t{400}; }, 0);
    // 40,000 ops / 4e6 ops/s = 10 ms.
    EXPECT_NEAR(stats.seconds, 0.01, 1e-9);
    EXPECT_NEAR(dev.busy_seconds(), 0.01, 1e-9);
}

TEST(Device, BusyTimeAccumulatesAndResets) {
    Device dev(test_profile());
    dev.execute(10, [](std::size_t) { return std::uint64_t{100}; }, 0);
    dev.execute(10, [](std::size_t) { return std::uint64_t{100}; }, 0);
    EXPECT_GT(dev.busy_seconds(), 0.0);
    dev.reset_busy_time();
    EXPECT_EQ(dev.busy_seconds(), 0.0);
}

TEST(Device, ThrowsOutOfResourcesOnScratchOverflow) {
    Device dev(test_profile());
    EXPECT_THROW(dev.execute(
                     1, [](std::size_t) { return std::uint64_t{1}; },
                     8192 /* > 4096 private */),
                 OclError);
    try {
        dev.execute(1, [](std::size_t) { return std::uint64_t{1}; }, 8192);
    } catch (const OclError& e) {
        EXPECT_EQ(e.status(), OclStatus::OutOfResources);
    }
}

TEST(Device, GpuOccupancyPenalizesLargeScratch) {
    DeviceProfile gpu = test_profile();
    gpu.min_resident_items = 4;
    gpu.private_memory_per_unit = 4096;
    Device dev(gpu);
    // 1024 bytes/item -> 4 resident -> full utilization.
    EXPECT_DOUBLE_EQ(dev.utilization_for_scratch(1024), 1.0);
    // 2048 bytes/item -> 2 resident -> half utilization.
    EXPECT_DOUBLE_EQ(dev.utilization_for_scratch(2048), 0.5);
    // 4096 bytes/item -> 1 resident -> quarter utilization.
    EXPECT_DOUBLE_EQ(dev.utilization_for_scratch(4096), 0.25);

    const auto full = dev.execute(
        16, [](std::size_t) { return std::uint64_t{1000}; }, 1024);
    const auto half = dev.execute(
        16, [](std::size_t) { return std::uint64_t{1000}; }, 2048);
    EXPECT_NEAR(half.seconds, 2.0 * full.seconds, 1e-9);
}

TEST(Device, CpuIgnoresScratchBelowLimit) {
    Device dev(test_profile());
    EXPECT_DOUBLE_EQ(dev.utilization_for_scratch(4096), 1.0);
    EXPECT_DOUBLE_EQ(dev.utilization_for_scratch(1), 1.0);
    EXPECT_DOUBLE_EQ(dev.utilization_for_scratch(0), 1.0);
}

// --------------------------------------------------------------- Context

TEST(Context, EnforcesQuarterCeiling) {
    Device dev(test_profile());
    Context ctx({&dev});
    // 1 MiB global -> 256 KiB single-allocation ceiling.
    EXPECT_NO_THROW(ctx.allocate(dev, 256 * 1024, "ok"));
    try {
        ctx.allocate(dev, 256 * 1024 + 1, "too-big");
        FAIL() << "expected OclError";
    } catch (const OclError& e) {
        EXPECT_EQ(e.status(), OclStatus::InvalidBufferSize);
    }
}

TEST(Context, EnforcesGlobalCapacity) {
    Device dev(test_profile());
    Context ctx({&dev});
    std::vector<Buffer> held;
    for (int i = 0; i < 4; ++i) {
        held.push_back(ctx.allocate(dev, 256 * 1024, "chunk"));
    }
    EXPECT_EQ(dev.allocated_bytes(), 1u << 20);
    try {
        ctx.allocate(dev, 1, "overflow");
        FAIL() << "expected OclError";
    } catch (const OclError& e) {
        EXPECT_EQ(e.status(), OclStatus::MemObjectAllocFail);
    }
}

TEST(Context, BufferReleaseReturnsMemory) {
    Device dev(test_profile());
    Context ctx({&dev});
    {
        const Buffer b = ctx.allocate(dev, 1000, "scoped");
        EXPECT_EQ(dev.allocated_bytes(), 1000u);
    }
    EXPECT_EQ(dev.allocated_bytes(), 0u);

    Buffer moved_to;
    {
        Buffer original = ctx.allocate(dev, 500, "moved");
        moved_to = std::move(original);
        EXPECT_FALSE(original.valid()); // NOLINT(bugprone-use-after-move)
    }
    EXPECT_EQ(dev.allocated_bytes(), 500u);
    moved_to.release();
    EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(Context, AvailableForAllocationTracksUsage) {
    Device dev(test_profile());
    Context ctx({&dev});
    // Fresh device: capped by the quarter ceiling.
    EXPECT_EQ(ctx.available_for_allocation(dev), 256u * 1024);
    // After filling most memory, the remaining free space is the cap.
    const Buffer a = ctx.allocate(dev, 256 * 1024, "a");
    const Buffer b = ctx.allocate(dev, 256 * 1024, "b");
    const Buffer c = ctx.allocate(dev, 256 * 1024, "c");
    const Buffer d = ctx.allocate(dev, 100 * 1024, "d");
    EXPECT_EQ(ctx.available_for_allocation(dev),
              (1u << 20) - 3 * 256 * 1024 - 100 * 1024);
}

TEST(Context, RejectsEmptyOrNullDevices) {
    EXPECT_THROW(Context(std::vector<Device*>{}), std::invalid_argument);
    EXPECT_THROW(Context({nullptr}), std::invalid_argument);
}

// ------------------------------------------------------------ Queue/Event

TEST(Queue, EnqueueRunsAsynchronouslyAndWaits) {
    Device dev(test_profile());
    CommandQueue queue(dev);
    std::atomic<int> ran{0};
    KernelLaunch launch;
    launch.name = "k";
    launch.n_items = 50;
    launch.body = [&](std::size_t) {
        ++ran;
        return std::uint64_t{10};
    };
    auto event = queue.enqueue(std::move(launch));
    const auto& stats = event.wait();
    EXPECT_EQ(ran.load(), 50);
    EXPECT_EQ(stats.total_ops, 500u);
    // wait() is idempotent.
    EXPECT_EQ(event.wait().total_ops, 500u);
}

TEST(Queue, KernelExceptionsSurfaceAtWait) {
    Device dev(test_profile());
    CommandQueue queue(dev);
    KernelLaunch launch;
    launch.name = "bad";
    launch.n_items = 1;
    launch.scratch_bytes_per_item = 1 << 30;
    launch.body = [](std::size_t) { return std::uint64_t{0}; };
    auto event = queue.enqueue(std::move(launch));
    EXPECT_THROW(event.wait(), OclError);
}

TEST(Queue, WaitListOrdersExecution) {
    Device a(test_profile()), b(test_profile());
    CommandQueue qa(a), qb(b);
    std::atomic<int> sequence{0};
    int first_done = -1, second_started = -1;

    KernelLaunch first;
    first.name = "first";
    first.n_items = 1;
    first.body = [&](std::size_t) {
        first_done = sequence++;
        return std::uint64_t{1};
    };
    auto e1 = qa.enqueue(std::move(first));

    KernelLaunch second;
    second.name = "second";
    second.n_items = 1;
    second.body = [&](std::size_t) {
        second_started = sequence++;
        return std::uint64_t{1};
    };
    auto e2 = qb.enqueue(std::move(second), {e1});
    e2.wait();
    EXPECT_LT(first_done, second_started);
}

TEST(Queue, FailedDependencyFailsDependentEvent) {
    Device dev(test_profile());
    CommandQueue queue(dev);
    KernelLaunch bad;
    bad.name = "bad";
    bad.n_items = 1;
    bad.scratch_bytes_per_item = 1 << 30; // out of resources
    bad.body = [](std::size_t) { return std::uint64_t{0}; };
    auto failing = queue.enqueue(std::move(bad));

    KernelLaunch dependent;
    dependent.name = "dependent";
    dependent.n_items = 1;
    dependent.body = [](std::size_t) { return std::uint64_t{1}; };
    auto event = queue.enqueue(std::move(dependent), {failing});
    EXPECT_THROW(event.wait(), OclError);
}

TEST(Queue, KernelBodyExceptionPropagates) {
    Device dev(test_profile());
    CommandQueue queue(dev);
    KernelLaunch launch;
    launch.name = "throwing";
    launch.n_items = 4;
    launch.body = [](std::size_t i) -> std::uint64_t {
        if (i == 2) throw std::runtime_error("work-item failure");
        return 1;
    };
    auto event = queue.enqueue(std::move(launch));
    EXPECT_THROW(event.wait(), std::runtime_error);
}

TEST(Queue, TwoDevicesAccumulateIndependently) {
    Device a(test_profile(2, 1e6));
    Device b(test_profile(2, 2e6));
    CommandQueue qa(a), qb(b);
    auto make = [](const char* tag) {
        KernelLaunch l;
        l.name = tag;
        l.n_items = 100;
        l.body = [](std::size_t) { return std::uint64_t{1000}; };
        return l;
    };
    auto ea = qa.enqueue(make("a"));
    auto eb = qb.enqueue(make("b"));
    ea.wait();
    eb.wait();
    // Same work, b has 2x throughput.
    EXPECT_NEAR(a.busy_seconds(), 2.0 * b.busy_seconds(), 1e-9);
}

TEST(Event, ConcurrentWaitersAllObserveTheResult) {
    // Regression: wait() used to cache stats without synchronization, so
    // two threads waiting on copies of one Event raced on the shared
    // state. Every waiter must observe the same completed LaunchStats.
    Device dev(test_profile());
    CommandQueue queue(dev);
    KernelLaunch launch;
    launch.name = "shared";
    launch.n_items = 200;
    launch.body = [](std::size_t) { return std::uint64_t{5}; };
    auto event = queue.enqueue(std::move(launch));

    std::atomic<int> correct{0};
    std::vector<std::thread> waiters;
    for (int t = 0; t < 8; ++t) {
        waiters.emplace_back([&correct, event]() mutable {
            if (event.wait().total_ops == 1000u) ++correct;
        });
    }
    for (auto& t : waiters) t.join();
    EXPECT_EQ(correct.load(), 8);
}

TEST(Event, ConcurrentWaitersAllObserveTheFailure) {
    Device dev(test_profile());
    CommandQueue queue(dev);
    KernelLaunch launch;
    launch.name = "doomed";
    launch.n_items = 1;
    launch.scratch_bytes_per_item = 1 << 30; // out of resources
    launch.body = [](std::size_t) { return std::uint64_t{0}; };
    auto event = queue.enqueue(std::move(launch));

    std::atomic<int> threw{0};
    std::vector<std::thread> waiters;
    for (int t = 0; t < 8; ++t) {
        waiters.emplace_back([&threw, event]() mutable {
            try {
                event.wait();
            } catch (const OclError&) {
                ++threw;
            }
        });
    }
    for (auto& t : waiters) t.join();
    EXPECT_EQ(threw.load(), 8);
}

TEST(Event, DefaultConstructedEventHasNoState) {
    repute::ocl::Event event;
    EXPECT_FALSE(event.valid());
    EXPECT_THROW(event.wait(), std::future_error);
}

// --------------------------------------------------------- Fault injection

TEST(Fault, NthLaunchFailsOnceThenRecovers) {
    Device dev(test_profile());
    FaultPlan plan;
    plan.fail_on_launch = 2;
    dev.inject_faults(plan);
    auto work = [](std::size_t) { return std::uint64_t{1}; };
    EXPECT_NO_THROW(dev.execute(10, work, 0)); // launch 1
    EXPECT_THROW(dev.execute(10, work, 0), OclError); // launch 2
    EXPECT_NO_THROW(dev.execute(10, work, 0)); // launch 3: recovered
    EXPECT_EQ(dev.fault_launches(), 3u);
    dev.clear_faults();
    EXPECT_EQ(dev.fault_launches(), 0u);
}

TEST(Fault, FailForeverKillsEveryLaunchFromNth) {
    Device dev(test_profile());
    FaultPlan plan;
    plan.fail_on_launch = 2;
    plan.fail_forever = true;
    plan.status = OclStatus::MemObjectAllocFail;
    dev.inject_faults(plan);
    auto work = [](std::size_t) { return std::uint64_t{1}; };
    EXPECT_NO_THROW(dev.execute(10, work, 0));
    for (int i = 0; i < 3; ++i) {
        try {
            dev.execute(10, work, 0);
            FAIL() << "expected injected fault";
        } catch (const OclError& e) {
            EXPECT_EQ(e.status(), OclStatus::MemObjectAllocFail);
        }
    }
    dev.clear_faults();
    EXPECT_NO_THROW(dev.execute(10, work, 0));
}

TEST(Fault, FailedLaunchRunsNoWorkItems) {
    Device dev(test_profile());
    FaultPlan plan;
    plan.fail_on_launch = 1;
    dev.inject_faults(plan);
    std::atomic<int> ran{0};
    auto work = [&](std::size_t) {
        ++ran;
        return std::uint64_t{1};
    };
    EXPECT_THROW(dev.execute(100, work, 0), OclError);
    EXPECT_EQ(ran.load(), 0); // fault fires at dispatch, not mid-kernel
    dev.clear_faults();
}

TEST(Fault, TransientScheduleIsDeterministicPerSeed) {
    auto failure_pattern = [](std::uint64_t seed) {
        Device dev(test_profile());
        FaultPlan plan;
        plan.transient_rate = 0.5;
        plan.seed = seed;
        dev.inject_faults(plan);
        std::vector<bool> failed;
        for (int i = 0; i < 32; ++i) {
            try {
                dev.execute(1, [](std::size_t) { return std::uint64_t{1}; },
                            0);
                failed.push_back(false);
            } catch (const OclError&) {
                failed.push_back(true);
            }
        }
        return failed;
    };
    const auto a = failure_pattern(123);
    EXPECT_EQ(a, failure_pattern(123)); // same seed, same schedule
    EXPECT_NE(a, failure_pattern(456)); // 2^-32 flake odds, acceptable
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
}

TEST(Fault, ZeroRatePlanNeverFires) {
    Device dev(test_profile());
    FaultPlan plan; // all defaults: no trigger armed
    dev.inject_faults(plan);
    for (int i = 0; i < 16; ++i) {
        EXPECT_NO_THROW(dev.execute(
            1, [](std::size_t) { return std::uint64_t{1}; }, 0));
    }
    EXPECT_EQ(dev.fault_launches(), 16u);
    dev.clear_faults();
}

// --------------------------------------------------------------- Platform

TEST(Platform, System1HasCalibratedDevices) {
    auto p = Platform::system1();
    EXPECT_EQ(p.devices().size(), 3u);
    EXPECT_EQ(p.idle_watts(), 160.0);
    auto& cpu = p.device("i7-2600");
    auto& gpu = p.device("gtx590-0");
    EXPECT_EQ(cpu.profile().type, DeviceType::Cpu);
    EXPECT_EQ(gpu.profile().type, DeviceType::Gpu);
    // Each GPU is slower than the CPU on this kernel (paper's ~2x total
    // speedup from CPU + 2 GPUs needs each GPU < CPU).
    const double cpu_tp = cpu.profile().compute_units *
                          cpu.profile().ops_per_unit_per_second;
    const double gpu_tp = gpu.profile().compute_units *
                          gpu.profile().ops_per_unit_per_second;
    EXPECT_LT(gpu_tp, cpu_tp);
    EXPECT_GT(gpu_tp, 0.5 * cpu_tp);
    EXPECT_THROW(p.device("nope"), std::out_of_range);
    EXPECT_EQ(p.find("nope"), nullptr);
}

TEST(Platform, System2IsSlowerButFarLowerPower) {
    auto s1 = Platform::system1();
    auto s2 = Platform::system2();
    EXPECT_EQ(s2.devices().size(), 2u);
    double s2_tp = 0.0, s2_watts = 0.0;
    for (auto* d : s2.devices()) {
        s2_tp += d->profile().compute_units *
                 d->profile().ops_per_unit_per_second;
        s2_watts += d->profile().power.active_watts;
    }
    const auto& cpu = s1.device("i7-2600").profile();
    const double s1_tp =
        cpu.compute_units * cpu.ops_per_unit_per_second;
    // HiKey970 ~0.3-0.6x the i7 (paper Table I vs III ratios).
    EXPECT_GT(s2_tp, 0.25 * s1_tp);
    EXPECT_LT(s2_tp, 0.7 * s1_tp);
    // And an order of magnitude+ lower power.
    EXPECT_LT(s2_watts * 20, cpu.power.active_watts);
}

TEST(Platform, ResetBusyTimesClearsAll) {
    auto p = Platform::system2();
    p.device("hikey970-a73")
        .execute(4, [](std::size_t) { return std::uint64_t{100}; }, 16);
    EXPECT_GT(p.device("hikey970-a73").busy_seconds(), 0.0);
    p.reset_busy_times();
    for (auto* d : p.devices()) {
        EXPECT_EQ(d->busy_seconds(), 0.0);
    }
}

} // namespace
