// energy: the §III-D measurement protocol.

#include <gtest/gtest.h>

#include "energy/energy_meter.hpp"
#include "ocl/platform.hpp"

namespace {

using repute::energy::DeviceUsage;
using repute::energy::measure;
using repute::ocl::Platform;

TEST(Energy, SingleDeviceFullyBusy) {
    auto p = Platform::system1();
    const auto& cpu = p.device("i7-2600");
    const DeviceUsage usage[] = {{&cpu, 10.0, 1.0}};
    const auto report = measure(10.0, usage, p.idle_watts());
    // 195 W for 10 s over 160 W idle.
    EXPECT_DOUBLE_EQ(report.average_power_watts, 160.0 + 195.0);
    EXPECT_DOUBLE_EQ(report.energy_joules, 1950.0);
    EXPECT_DOUBLE_EQ(report.mapping_seconds, 10.0);
}

TEST(Energy, PowerScaleModelsSoftwareMappers) {
    auto p = Platform::system1();
    const auto& cpu = p.device("i7-2600");
    const DeviceUsage usage[] = {{&cpu, 10.0, 0.42}};
    const auto report = measure(10.0, usage, p.idle_watts());
    EXPECT_NEAR(report.average_power_watts, 160.0 + 0.42 * 195.0, 1e-9);
}

TEST(Energy, MultiDeviceSumsContributions) {
    auto p = Platform::system1();
    const DeviceUsage usage[] = {
        {&p.device("i7-2600"), 5.0, 1.0},
        {&p.device("gtx590-0"), 5.0, 1.0},
        {&p.device("gtx590-1"), 5.0, 1.0},
    };
    const auto report = measure(5.0, usage, p.idle_watts());
    EXPECT_DOUBLE_EQ(report.energy_joules, 5.0 * (195.0 + 50.0 + 50.0));
    EXPECT_DOUBLE_EQ(report.average_power_watts, 160.0 + 295.0);
}

TEST(Energy, PartiallyBusyDeviceLowersAveragePower) {
    auto p = Platform::system1();
    const DeviceUsage usage[] = {{&p.device("gtx590-0"), 2.0, 1.0}};
    const auto report = measure(10.0, usage, p.idle_watts());
    // 50 W x 2 s spread over 10 s -> +10 W average.
    EXPECT_DOUBLE_EQ(report.average_power_watts, 170.0);
    EXPECT_DOUBLE_EQ(report.energy_joules, 100.0);
}

TEST(Energy, EmbeddedEnergyAdvantage) {
    // The paper's headline: the same logical work on the SoC costs ~20x+
    // less energy even though it runs slower.
    auto s1 = Platform::system1();
    auto s2 = Platform::system2();
    const DeviceUsage workstation[] = {{&s1.device("i7-2600"), 7.5, 1.0}};
    const DeviceUsage embedded[] = {
        {&s2.device("hikey970-a73"), 17.5, 1.0},
        {&s2.device("hikey970-a53"), 17.5, 1.0},
    };
    const auto e1 = measure(7.5, workstation, s1.idle_watts());
    const auto e2 = measure(17.5, embedded, s2.idle_watts());
    EXPECT_GT(e1.energy_joules, 15.0 * e2.energy_joules);
}

TEST(Energy, RejectsNonPositiveTime) {
    EXPECT_THROW((void)measure(0.0, {}, 100.0), std::invalid_argument);
    EXPECT_THROW((void)measure(-1.0, {}, 100.0), std::invalid_argument);
}

TEST(Energy, NullDevicesIgnored) {
    const DeviceUsage usage[] = {{nullptr, 5.0, 1.0}};
    const auto report = measure(5.0, usage, 50.0);
    EXPECT_DOUBLE_EQ(report.energy_joules, 0.0);
    EXPECT_DOUBLE_EQ(report.average_power_watts, 50.0);
}

TEST(Energy, ToStringFormats) {
    auto p = Platform::system2();
    const DeviceUsage usage[] = {{&p.device("hikey970-a73"), 1.0, 1.0}};
    const auto report = measure(1.0, usage, p.idle_watts());
    const auto s = repute::energy::to_string(report);
    EXPECT_NE(s.find("P="), std::string::npos);
    EXPECT_NE(s.find("E="), std::string::npos);
}

} // namespace
