// Verification funnel: the prefilter's zero-false-rejection property,
// byte-identical mapping output with each funnel layer toggled off, and
// the funnel metrics exported through the obs layer.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "align/myers.hpp"
#include "align/prefilter.hpp"
#include "core/kernels.hpp"
#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "obs/trace.hpp"
#include "util/packed_dna.hpp"
#include "util/prng.hpp"

namespace {

using repute::align::MyersMatcher;
using repute::align::Prefilter;
using repute::core::KernelConfig;
using repute::core::KernelScratch;
using repute::core::map_read_workitem;
using repute::core::ReadMapping;
using repute::core::StageTotals;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::index::FmIndex;
using repute::util::PackedDna;
using repute::util::Xoshiro256;

std::vector<std::uint8_t> random_codes(Xoshiro256& rng, std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& c : out) c = static_cast<std::uint8_t>(rng.bounded(4));
    return out;
}

std::vector<std::uint8_t> mutate(Xoshiro256& rng,
                                 std::vector<std::uint8_t> base,
                                 std::uint32_t edits) {
    for (std::uint32_t e = 0; e < edits && !base.empty(); ++e) {
        const auto kind = rng.bounded(3);
        const std::size_t pos = rng.bounded(base.size());
        if (kind == 0) {
            base[pos] = static_cast<std::uint8_t>(
                (base[pos] + 1 + rng.bounded(3)) & 3);
        } else if (kind == 1) {
            base.insert(base.begin() + static_cast<std::ptrdiff_t>(pos),
                        static_cast<std::uint8_t>(rng.bounded(4)));
        } else {
            base.erase(base.begin() + static_cast<std::ptrdiff_t>(pos));
        }
    }
    return base;
}

// ------------------------------------------------ prefilter soundness

TEST(Prefilter, NeverRejectsAWindowMyersAccepts) {
    // The funnel's load-bearing property: for every window the full
    // Myers scan scores ≤ δ, admits() must return true — across random
    // and planted windows, every δ in the paper's range, and unaligned
    // packed offsets (coalesced groups hand the prefilter sub-windows
    // at arbitrary base offsets).
    Xoshiro256 rng(2024);
    Prefilter filter;
    std::vector<std::uint64_t> words;
    int accepts_checked = 0;
    for (int trial = 0; trial < 400; ++trial) {
        const std::size_t n = 20 + rng.bounded(140);
        const auto pattern = random_codes(rng, n);
        // Half the windows contain a mutated copy of the pattern, so
        // plenty of trials sit right at the accept/reject boundary.
        std::vector<std::uint8_t> win;
        if (rng.chance(0.5)) {
            win = mutate(rng, pattern,
                         static_cast<std::uint32_t>(rng.bounded(8)));
            auto left = random_codes(rng, rng.bounded(12));
            auto right = random_codes(rng, rng.bounded(12));
            left.insert(left.end(), win.begin(), win.end());
            left.insert(left.end(), right.begin(), right.end());
            win = std::move(left);
        } else {
            win = random_codes(rng, 1 + rng.bounded(2 * n));
        }

        // Embed the window at a random unaligned offset of a larger
        // packed sequence, as the kernel's group fetch does.
        const std::size_t off = rng.bounded(37);
        auto span_codes = random_codes(rng, off);
        span_codes.insert(span_codes.end(), win.begin(), win.end());
        const PackedDna packed{
            std::span<const std::uint8_t>(span_codes)};
        words.resize(PackedDna::packed_word_count(span_codes.size()));
        packed.extract_words(0, span_codes.size(), words.data());

        const MyersMatcher matcher(pattern);
        const auto full = matcher.best_in(win);
        filter.set_pattern(pattern);
        for (std::uint32_t delta = 0; delta <= 5; ++delta) {
            const bool admitted =
                filter.admits(words.data(), off, win.size(), delta);
            if (full.distance <= delta) {
                EXPECT_TRUE(admitted)
                    << "false rejection: n=" << n << " |win|=" << win.size()
                    << " off=" << off << " delta=" << delta
                    << " true distance=" << full.distance;
                ++accepts_checked;
            }
        }
    }
    // The sweep must actually exercise the accept side.
    EXPECT_GT(accepts_checked, 200);
}

TEST(Prefilter, RejectsMostRandomWindows) {
    // Not a soundness requirement, but the filter only pays for itself
    // if it kills the bulk of false candidates; guard the rejection
    // strength so a regression can't silently neuter the funnel.
    Xoshiro256 rng(7);
    Prefilter filter;
    std::vector<std::uint64_t> words;
    int rejected = 0;
    const int trials = 200;
    for (int trial = 0; trial < trials; ++trial) {
        const auto pattern = random_codes(rng, 100);
        const auto win = random_codes(rng, 110);
        const PackedDna packed{std::span<const std::uint8_t>(win)};
        words.resize(PackedDna::packed_word_count(win.size()));
        packed.extract_words(0, win.size(), words.data());
        filter.set_pattern(pattern);
        if (!filter.admits(words.data(), 0, win.size(), 5)) ++rejected;
    }
    EXPECT_GT(rejected, trials * 8 / 10)
        << "prefilter rejected only " << rejected << "/" << trials
        << " random windows";
}

TEST(Prefilter, ReportsWordOps) {
    Xoshiro256 rng(11);
    Prefilter filter;
    const auto pattern = random_codes(rng, 100);
    const auto win = random_codes(rng, 110);
    const PackedDna packed{std::span<const std::uint8_t>(win)};
    std::vector<std::uint64_t> words(
        PackedDna::packed_word_count(win.size()));
    packed.extract_words(0, win.size(), words.data());
    filter.set_pattern(pattern);
    (void)filter.admits(words.data(), 0, win.size(), 5);
    EXPECT_GT(filter.last_word_ops(), 0u);
    // A full rejection sweep (the worst case) must stay well under the
    // modeled cost of the Myers scan it replaces: ~26 masks * 4 packed
    // words plus group ANDs at weight 1, vs 110 columns * 2 words at
    // weight 4 (OpWeights::myers_word).
    const MyersMatcher matcher(pattern);
    EXPECT_LT(filter.last_word_ops() * 1,
              matcher.scan_cost(win.size()) * 4);
}

// ------------------------------------------- layer-off equivalence

class FunnelEquivalence : public ::testing::Test {
protected:
    void map_all(const KernelConfig& config,
                 std::vector<std::vector<ReadMapping>>& results,
                 StageTotals* stages = nullptr) {
        KernelScratch scratch;
        std::vector<ReadMapping> out;
        results.clear();
        for (const auto& read : sim_.batch.reads) {
            map_read_workitem(*fm_, reference_, seeder_, read, delta_,
                              config, out, scratch, stages);
            results.push_back(out);
        }
    }

    void SetUp() override {
        GenomeSimConfig gconfig;
        gconfig.length = 80'000;
        gconfig.seed = 33;
        reference_ = simulate_genome(gconfig);
        fm_.emplace(reference_, 4);
        ReadSimConfig rconfig;
        rconfig.n_reads = 120;
        rconfig.read_length = 100;
        rconfig.max_errors = 5;
        sim_ = simulate_reads(reference_, rconfig);
    }

    Reference reference_;
    std::optional<FmIndex> fm_;
    repute::genomics::SimulatedReads sim_;
    repute::filter::MemoryOptimizedSeeder seeder_{12};
    std::uint32_t delta_ = 5;
};

TEST_F(FunnelEquivalence, EachLayerOffMatchesFullFunnel) {
    std::vector<std::vector<ReadMapping>> full;
    StageTotals stages;
    map_all(KernelConfig{}, full, &stages);
    // The funnel must actually engage on this workload.
    EXPECT_GT(stages.prefilter_rejects, 0u);
    EXPECT_GT(stages.windows_coalesced, 0u);

    const char* names[] = {"no-prefilter", "no-band", "no-coalesce",
                           "no-simd",      "all-off", "all-off+simd"};
    KernelConfig configs[6];
    configs[0].prefilter = false;
    configs[1].banded_verification = false;
    configs[2].coalesce_windows = false;
    configs[3].simd_verification = false;
    configs[4].prefilter = false;
    configs[4].banded_verification = false;
    configs[4].coalesce_windows = false;
    configs[4].simd_verification = false;
    // simd left on without the band it batches: must be inert.
    configs[5].prefilter = false;
    configs[5].banded_verification = false;
    configs[5].coalesce_windows = false;

    for (int i = 0; i < 6; ++i) {
        std::vector<std::vector<ReadMapping>> toggled;
        map_all(configs[i], toggled);
        ASSERT_EQ(toggled.size(), full.size());
        for (std::size_t r = 0; r < full.size(); ++r) {
            ASSERT_EQ(toggled[r], full[r])
                << names[i] << " diverged on read " << r;
        }
    }
}

TEST_F(FunnelEquivalence, HeuristicSeederAgreesToo) {
    // CORAL's streaming flow (no diagonal collapse) feeds duplicated,
    // unsorted-by-diagonal windows through the funnel — equivalence
    // must hold there as well.
    repute::filter::HeuristicSeeder coral_seeder;
    KernelConfig full_config;
    full_config.collapse_candidates = false;
    KernelConfig off_config = full_config;
    off_config.prefilter = false;
    off_config.banded_verification = false;
    off_config.coalesce_windows = false;

    KernelScratch scratch_a, scratch_b;
    std::vector<ReadMapping> out_a, out_b;
    for (const auto& read : sim_.batch.reads) {
        map_read_workitem(*fm_, reference_, coral_seeder, read, delta_,
                          full_config, out_a, scratch_a, nullptr);
        map_read_workitem(*fm_, reference_, coral_seeder, read, delta_,
                          off_config, out_b, scratch_b, nullptr);
        ASSERT_EQ(out_a, out_b) << "read " << read.id;
    }
}

// ------------------------------------------------------ funnel metrics

TEST_F(FunnelEquivalence, FunnelCountersExportThroughObs) {
    repute::obs::TraceSession session;
    std::vector<std::vector<ReadMapping>> results;
    map_all(KernelConfig{}, results);
    auto& reg = session.registry();
    EXPECT_GT(reg.counter("kernel.prefilter_rejects").value(), 0u);
    EXPECT_GT(reg.counter("kernel.windows_coalesced").value(), 0u);
    // Early exits: present on this workload because rejected-by-Myers
    // windows abandon once the score bound proves the outcome.
    EXPECT_GE(reg.counter("kernel.myers_early_exits").value(), 0u);
    // The lane-batched path engages (full batches happen on this
    // workload) and its occupancy histogram carries per-read samples.
    EXPECT_GT(reg.counter("kernel.simd_batches").value(), 0u);
    EXPECT_GT(reg.histogram("kernel.simd_lane_occupancy").snapshot().count,
              0u);
}

TEST_F(FunnelEquivalence, EarlyExitAndCostAccountingEngage) {
    // With the prefilter off, near-miss windows reach Myers and the
    // banded scan must (a) bail early on some of them and (b) report
    // fewer verify ops than the full-scan configuration.
    KernelConfig banded_only;
    banded_only.prefilter = false;
    StageTotals banded_stages;
    std::vector<std::vector<ReadMapping>> results;
    map_all(banded_only, results, &banded_stages);
    EXPECT_GT(banded_stages.myers_early_exits, 0u);

    KernelConfig none;
    none.prefilter = false;
    none.banded_verification = false;
    none.coalesce_windows = false;
    StageTotals full_scan_stages;
    map_all(none, results, &full_scan_stages);
    EXPECT_LT(banded_stages.verify_ops, full_scan_stages.verify_ops)
        << "banded verification did not reduce modeled verify cost";
}

} // namespace
