// Paired-end: simulation geometry, proper-pair joining, mate rescue,
// discordant detection.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "align/edit_distance.hpp"
#include "core/paired.hpp"
#include "core/repute_mapper.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/pair_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/device.hpp"

namespace {

using repute::core::PairClass;
using repute::core::PairedConfig;
using repute::core::PairedMapper;
using repute::core::ReadMapping;
using repute::genomics::GenomeSimConfig;
using repute::genomics::PairSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_pairs;
using repute::genomics::SimulatedPairs;
using repute::genomics::Strand;
using repute::index::FmIndex;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;

DeviceProfile test_profile() {
    DeviceProfile p;
    p.name = "paired-cpu";
    p.compute_units = 8;
    p.ops_per_unit_per_second = 1e9;
    p.global_memory_bytes = 1ULL << 30;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

class PairedTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 300'000;
        gconfig.seed = 51;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);

        PairSimConfig pconfig;
        pconfig.n_pairs = 150;
        pconfig.read_length = 100;
        pconfig.max_errors = 4;
        pconfig.insert_mean = 350;
        pconfig.insert_stddev = 30;
        sim_ = new SimulatedPairs(simulate_pairs(*reference_, pconfig));
        device_ = new Device(test_profile());
    }
    static void TearDownTestSuite() {
        delete device_;
        delete sim_;
        delete fm_;
        delete reference_;
        device_ = nullptr;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedPairs* sim_;
    static Device* device_;
};

Reference* PairedTest::reference_ = nullptr;
FmIndex* PairedTest::fm_ = nullptr;
SimulatedPairs* PairedTest::sim_ = nullptr;
Device* PairedTest::device_ = nullptr;

// ------------------------------------------------------------ simulation

TEST_F(PairedTest, SimulationGeometry) {
    ASSERT_EQ(sim_->first.size(), 150u);
    ASSERT_EQ(sim_->second.size(), 150u);
    double insert_sum = 0;
    for (const auto& origin : sim_->origins) {
        EXPECT_GE(origin.fragment_length, 100u);
        EXPECT_LE(origin.edits1, 4u);
        EXPECT_LE(origin.edits2, 4u);
        insert_sum += origin.fragment_length;
    }
    // Mean insert near the configured 350.
    EXPECT_NEAR(insert_sum / 150.0, 350.0, 15.0);
}

TEST_F(PairedTest, MatesAlignAtTheirGroundTruth) {
    // Mate 1 forward at fragment_start; mate 2 reverse at
    // fragment_start + fragment_length - read_len.
    for (std::size_t i = 0; i < 20; ++i) {
        const auto& origin = sim_->origins[i];
        const auto window1 = reference_->sequence().extract(
            origin.fragment_start, 104);
        EXPECT_LE(repute::align::semiglobal_distance(
                      sim_->first.reads[i].codes, window1),
                  origin.edits1);
        const std::uint32_t mate2_pos =
            origin.fragment_start + origin.fragment_length - 100;
        const auto window2 =
            reference_->sequence().extract(mate2_pos, 104);
        EXPECT_LE(repute::align::semiglobal_distance(
                      sim_->second.reads[i].reverse_complement(),
                      window2),
                  origin.edits2);
    }
}

// --------------------------------------------------------------- pairing

TEST_F(PairedTest, MostPairsAreProperWithCorrectInserts) {
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{device_, 1.0}});
    PairedConfig config;
    config.min_insert = 200;
    config.max_insert = 500;
    PairedMapper paired(*mapper, *reference_, config);
    const auto result =
        paired.map_pairs(sim_->first, sim_->second, 4);

    ASSERT_EQ(result.pairs.size(), 150u);
    const double proper_fraction =
        static_cast<double>(result.count(PairClass::Proper)) / 150.0;
    EXPECT_GE(proper_fraction, 0.95);
    EXPECT_GT(result.mapping_seconds, 0.0);

    for (std::size_t i = 0; i < result.pairs.size(); ++i) {
        const auto& pair = result.pairs[i];
        if (pair.classification != PairClass::Proper) continue;
        EXPECT_GE(pair.insert_size, 200u);
        EXPECT_LE(pair.insert_size, 500u);
        // Insert close to the simulated fragment length.
        const auto truth = sim_->origins[i].fragment_length;
        EXPECT_NEAR(static_cast<double>(pair.insert_size),
                    static_cast<double>(truth), 10.0)
            << "pair " << i;
    }
}

TEST_F(PairedTest, RescueRecoversBrokenMate) {
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{device_, 1.0}});
    PairedConfig config;
    config.min_insert = 200;
    config.max_insert = 500;
    PairedMapper paired(*mapper, *reference_, config);

    // Pick a pair whose mate 2 is error-free, then plant exactly 5
    // substitutions: single-end mapping at delta=4 fails (distance 5),
    // but rescue at delta + bonus = 6 succeeds.
    std::size_t clean = sim_->origins.size();
    for (std::size_t i = 0; i < sim_->origins.size(); ++i) {
        if (sim_->origins[i].edits2 == 0) {
            clean = i;
            break;
        }
    }
    ASSERT_LT(clean, sim_->origins.size());
    repute::genomics::ReadBatch first, second;
    first.read_length = second.read_length = 100;
    first.reads.push_back(sim_->first.reads[clean]);
    second.reads.push_back(sim_->second.reads[clean]);
    auto& victim = second.reads[0];
    std::uint32_t planted = 0;
    for (std::size_t at = 5; planted < 5 && at < victim.codes.size();
         at += 19) {
        victim.codes[at] =
            static_cast<std::uint8_t>((victim.codes[at] + 1) & 3);
        ++planted;
    }
    ASSERT_EQ(planted, 5u);

    const auto result = paired.map_pairs(first, second, 4);
    const auto& pair = result.pairs[0];
    // Either the victim still mapped (its simulated errors were low) or
    // it was rescued; it must not be lost entirely.
    EXPECT_NE(pair.classification, PairClass::OneMateUnmapped);
    EXPECT_NE(pair.classification, PairClass::BothUnmapped);

    // With rescue disabled, the same input degrades.
    PairedConfig no_rescue = config;
    no_rescue.enable_rescue = false;
    PairedMapper strict(*mapper, *reference_, no_rescue);
    const auto strict_result = strict.map_pairs(first, second, 4);
    EXPECT_GE(strict_result.count(PairClass::OneMateUnmapped),
              result.count(PairClass::OneMateUnmapped));
}

TEST_F(PairedTest, DiscordantPairsDetected) {
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{device_, 1.0}});
    PairedConfig config;
    config.min_insert = 200;
    config.max_insert = 500;
    config.enable_rescue = false;
    PairedMapper paired(*mapper, *reference_, config);

    // Build a translocated pair: mate1 of pair 0 with mate2 of pair 1
    // (different loci -> no proper insert).
    repute::genomics::ReadBatch first, second;
    first.read_length = second.read_length = 100;
    first.reads.push_back(sim_->first.reads[0]);
    second.reads.push_back(sim_->second.reads[1]);
    const auto result = paired.map_pairs(first, second, 4);
    ASSERT_EQ(result.pairs.size(), 1u);
    EXPECT_EQ(result.pairs[0].classification, PairClass::Discordant);
}

TEST_F(PairedTest, PairedSamExportFlagsAndTlen) {
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{device_, 1.0}});
    PairedConfig config;
    config.min_insert = 200;
    config.max_insert = 500;
    PairedMapper paired(*mapper, *reference_, config);

    repute::genomics::ReadBatch first, second;
    first.read_length = second.read_length = 100;
    for (std::size_t i = 0; i < 10; ++i) {
        first.reads.push_back(sim_->first.reads[i]);
        second.reads.push_back(sim_->second.reads[i]);
    }
    const auto result = paired.map_pairs(first, second, 4);
    const auto sam = repute::core::paired_to_sam(first, second, result,
                                                 reference_->name());
    ASSERT_EQ(sam.size(), 20u);

    using repute::genomics::SamRecord;
    for (std::size_t i = 0; i < sam.size(); i += 2) {
        const auto& r1 = sam[i];
        const auto& r2 = sam[i + 1];
        EXPECT_TRUE(r1.flag & SamRecord::kFlagPaired);
        EXPECT_TRUE(r1.flag & SamRecord::kFlagFirstInPair);
        EXPECT_TRUE(r2.flag & SamRecord::kFlagSecondInPair);
        if ((r1.flag & SamRecord::kFlagProperPair) != 0) {
            // Proper pairs: mates point at each other; TLEN mirrors.
            EXPECT_EQ(r1.rnext, "=");
            EXPECT_EQ(r1.pnext, r2.pos);
            EXPECT_EQ(r2.pnext, r1.pos);
            EXPECT_EQ(r1.tlen, -r2.tlen);
            EXPECT_NE(r1.tlen, 0);
            // Exactly one mate on the reverse strand.
            EXPECT_NE((r1.flag & SamRecord::kFlagReverse) != 0,
                      (r2.flag & SamRecord::kFlagReverse) != 0);
        }
    }

    // Round-trips through the SAM-lite writer/parser.
    std::stringstream io;
    repute::genomics::write_sam(io, reference_->name(),
                                reference_->size(), sam);
    const auto parsed = repute::genomics::read_sam(io);
    ASSERT_EQ(parsed.size(), sam.size());
    EXPECT_EQ(parsed[0].tlen, sam[0].tlen);
    EXPECT_EQ(parsed[0].pnext, sam[0].pnext);
}

TEST_F(PairedTest, RejectsMismatchedBatches) {
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{device_, 1.0}});
    PairedMapper paired(*mapper, *reference_);
    repute::genomics::ReadBatch first, second;
    first.read_length = second.read_length = 100;
    first.reads.resize(2);
    second.reads.resize(3);
    EXPECT_THROW((void)paired.map_pairs(first, second, 3),
                 std::invalid_argument);
    EXPECT_THROW(PairedMapper(*mapper, *reference_,
                              PairedConfig{500, 200, true, 2}),
                 std::invalid_argument);
}

} // namespace
