// MultiReference: concatenation, position resolution, boundary checks.

#include <gtest/gtest.h>

#include "genomics/multi_reference.hpp"

namespace {

using repute::genomics::FastaRecord;
using repute::genomics::MultiReference;

MultiReference make_three() {
    return MultiReference({{"chrA", "ACGTACGTAC"},   // [0, 10)
                           {"chrB", "TTTT"},         // [10, 14)
                           {"chrC", "GGGGGGGG"}});   // [14, 22)
}

TEST(MultiReference, ConcatenatesInOrder) {
    const auto multi = make_three();
    EXPECT_EQ(multi.sequence_count(), 3u);
    EXPECT_EQ(multi.concatenated().size(), 22u);
    EXPECT_EQ(multi.concatenated().sequence().to_string(),
              "ACGTACGTACTTTTGGGGGGGG");
    EXPECT_EQ(multi.sequence_length(0), 10u);
    EXPECT_EQ(multi.sequence_length(1), 4u);
    EXPECT_EQ(multi.sequence_length(2), 8u);
}

TEST(MultiReference, ResolvesPositions) {
    const auto multi = make_three();
    EXPECT_EQ(multi.resolve(0).sequence_index, 0u);
    EXPECT_EQ(multi.resolve(9).sequence_index, 0u);
    EXPECT_EQ(multi.resolve(9).offset, 9u);
    EXPECT_EQ(multi.resolve(10).sequence_index, 1u);
    EXPECT_EQ(multi.resolve(10).offset, 0u);
    EXPECT_EQ(multi.resolve(13).sequence_index, 1u);
    EXPECT_EQ(multi.resolve(14).sequence_index, 2u);
    EXPECT_EQ(multi.resolve(21).offset, 7u);
    EXPECT_THROW((void)multi.resolve(22), std::out_of_range);
    EXPECT_EQ(multi.sequence_name(1), "chrB");
}

TEST(MultiReference, BoundaryWindows) {
    const auto multi = make_three();
    EXPECT_TRUE(multi.within_one_sequence(0, 10));   // exactly chrA
    EXPECT_FALSE(multi.within_one_sequence(5, 10));  // spans A|B
    EXPECT_TRUE(multi.within_one_sequence(10, 4));   // exactly chrB
    EXPECT_FALSE(multi.within_one_sequence(12, 4));  // spans B|C
    EXPECT_TRUE(multi.within_one_sequence(14, 8));   // exactly chrC
    EXPECT_FALSE(multi.within_one_sequence(14, 9));  // past the end
    EXPECT_TRUE(multi.within_one_sequence(21, 1));
    EXPECT_FALSE(multi.within_one_sequence(22, 1));
    EXPECT_TRUE(multi.within_one_sequence(3, 0));    // empty window
}

TEST(MultiReference, RejectsDegenerateInputs) {
    EXPECT_THROW(MultiReference(std::vector<FastaRecord>{}),
                 std::invalid_argument);
    EXPECT_THROW(MultiReference(std::vector<FastaRecord>{{"empty", ""}}),
                 std::invalid_argument);
}

TEST(MultiReference, SingleSequenceBehavesLikeReference) {
    const MultiReference multi(std::vector<FastaRecord>{{"only", "ACGTACGT"}});
    EXPECT_EQ(multi.sequence_count(), 1u);
    EXPECT_TRUE(multi.within_one_sequence(0, 8));
    EXPECT_EQ(multi.resolve(7).sequence_index, 0u);
    EXPECT_EQ(multi.resolve(7).offset, 7u);
}

} // namespace
