// util: PRNG determinism/uniformity, bit vector rank/select, packed DNA,
// thread pool, CLI args, stats.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

#include "util/args.hpp"
#include "util/bitvector.hpp"
#include "util/packed_dna.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/threadpool.hpp"

namespace {

using repute::util::Args;
using repute::util::BitVector;
using repute::util::PackedDna;
using repute::util::summarize;
using repute::util::ThreadPool;
using repute::util::Xoshiro256;

// ------------------------------------------------------------------ PRNG

TEST(Prng, DeterministicForSeed) {
    Xoshiro256 a(42), b(42), c(43);
    bool all_equal = true, any_diff_c = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a(), vb = b(), vc = c();
        all_equal = all_equal && (va == vb);
        any_diff_c = any_diff_c || (va != vc);
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_c);
}

TEST(Prng, BoundedStaysInBounds) {
    Xoshiro256 rng(1);
    for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.bounded(bound), bound);
        }
    }
    EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Prng, BoundedIsRoughlyUniform) {
    Xoshiro256 rng(2);
    std::map<std::uint64_t, int> hist;
    const int n = 40'000;
    for (int i = 0; i < n; ++i) ++hist[rng.bounded(8)];
    for (const auto& [value, count] : hist) {
        EXPECT_NEAR(count, n / 8, n / 8 * 0.15) << "value " << value;
    }
}

TEST(Prng, UniformInUnitInterval) {
    Xoshiro256 rng(3);
    double sum = 0;
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Prng, LongJumpDecorrelatesStreams) {
    Xoshiro256 a(7);
    Xoshiro256 b = a;
    b.long_jump();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

// ------------------------------------------------------------- BitVector

TEST(BitVector, RankMatchesNaiveCount) {
    Xoshiro256 rng(5);
    BitVector bv(10'000);
    std::vector<bool> shadow(10'000, false);
    for (int i = 0; i < 3000; ++i) {
        const std::size_t pos = rng.bounded(10'000);
        bv.set(pos);
        shadow[pos] = true;
    }
    bv.build_rank();

    std::size_t running = 0;
    for (std::size_t i = 0; i <= 10'000; i += 37) {
        EXPECT_EQ(bv.rank1(i), running + 0) << "i=" << i;
        // advance shadow count to next checkpoint
        for (std::size_t j = i; j < std::min<std::size_t>(i + 37, 10'000);
             ++j) {
            running += shadow[j] ? 1 : 0;
        }
    }
    EXPECT_EQ(bv.rank1(10'000), bv.count_ones());
}

TEST(BitVector, RankZeroComplement) {
    BitVector bv(1000);
    for (std::size_t i = 0; i < 1000; i += 3) bv.set(i);
    bv.build_rank();
    for (std::size_t i = 0; i <= 1000; i += 101) {
        EXPECT_EQ(bv.rank0(i) + bv.rank1(i), i);
    }
}

TEST(BitVector, SelectInvertsRank) {
    Xoshiro256 rng(9);
    BitVector bv(5000);
    for (int i = 0; i < 800; ++i) bv.set(rng.bounded(5000));
    bv.build_rank();
    for (std::size_t k = 0; k < bv.count_ones(); k += 13) {
        const std::size_t pos = bv.select1(k);
        ASSERT_LT(pos, bv.size());
        EXPECT_TRUE(bv.get(pos));
        EXPECT_EQ(bv.rank1(pos), k);
    }
    EXPECT_EQ(bv.select1(bv.count_ones()), bv.size());
}

TEST(BitVector, AllOnesConstruction) {
    BitVector bv(130, true);
    bv.build_rank();
    EXPECT_EQ(bv.count_ones(), 130u);
    EXPECT_EQ(bv.rank1(130), 130u);
    EXPECT_EQ(bv.rank1(65), 65u);
}

TEST(BitVector, EmptyVector) {
    BitVector bv;
    bv.build_rank();
    EXPECT_EQ(bv.size(), 0u);
    EXPECT_EQ(bv.count_ones(), 0u);
}

// ------------------------------------------------------------- PackedDna

TEST(PackedDna, RoundTripsAscii) {
    const std::string s = "ACGTACGTTTGGCCAA";
    const PackedDna dna{std::string_view(s)};
    EXPECT_EQ(dna.size(), s.size());
    EXPECT_EQ(dna.to_string(), s);
}

TEST(PackedDna, LowercaseAndUnknownBases) {
    const PackedDna dna{std::string_view("acgtN")};
    EXPECT_EQ(dna.to_string(), "ACGTA"); // N maps to code 0
}

TEST(PackedDna, CodeAtCrossesWordBoundaries) {
    Xoshiro256 rng(11);
    std::string s(200, 'A');
    for (auto& c : s) c = "ACGT"[rng.bounded(4)];
    const PackedDna dna{std::string_view(s)};
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(dna.char_at(i), s[i]) << "i=" << i;
    }
}

TEST(PackedDna, ExtractSubranges) {
    const PackedDna dna{std::string_view("AACCGGTTACGT")};
    const auto codes = dna.extract(2, 4);
    ASSERT_EQ(codes.size(), 4u);
    EXPECT_EQ(codes[0], 1u); // C
    EXPECT_EQ(codes[1], 1u); // C
    EXPECT_EQ(codes[2], 2u); // G
    EXPECT_EQ(codes[3], 2u); // G
    EXPECT_EQ(dna.to_string(8, 4), "ACGT");
}

TEST(PackedDna, ReverseComplement) {
    const PackedDna dna{std::string_view("AACGT")};
    EXPECT_EQ(dna.reverse_complement().to_string(), "ACGTT");
    // Involution.
    EXPECT_EQ(dna.reverse_complement().reverse_complement().to_string(),
              "AACGT");
}

TEST(PackedDna, PushBackGrowsWords) {
    PackedDna dna;
    for (int i = 0; i < 100; ++i) {
        dna.push_back(static_cast<std::uint8_t>(i & 3));
    }
    EXPECT_EQ(dna.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(dna.code_at(static_cast<std::size_t>(i)), i & 3);
    }
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsAllIterations) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(1000, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, EachIndexExactlyOnce) {
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(500);
    pool.parallel_for(500, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 500; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
    }
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100,
                                   [](std::size_t i) {
                                       if (i == 37) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
    ThreadPool pool(2);
    std::atomic<int> value{0};
    auto f = pool.submit([&] { value = 7; });
    f.get();
    EXPECT_EQ(value.load(), 7);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
    ThreadPool pool(2);
    pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

// ------------------------------------------------------------------ Args

TEST(Args, ParsesAllForms) {
    // Note: a bare `--flag` followed by a non-flag token consumes it as
    // the flag's value, so boolean flags go last or use `--flag=true`.
    const char* argv[] = {"prog", "--alpha", "3",    "--beta=x", "pos1",
                          "--g",  "2.5",     "pos2", "--flag"};
    const Args args(9, argv);
    EXPECT_EQ(args.get_int("alpha", 0), 3);
    EXPECT_EQ(args.get_string("beta", ""), "x");
    EXPECT_TRUE(args.get_bool("flag", false));
    EXPECT_DOUBLE_EQ(args.get_double("g", 0.0), 2.5);
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "pos1");
    EXPECT_EQ(args.positional()[1], "pos2");
}

TEST(Args, DefaultsWhenAbsent) {
    const char* argv[] = {"prog"};
    const Args args(1, argv);
    EXPECT_EQ(args.get_int("missing", 17), 17);
    EXPECT_EQ(args.get_string("missing", "d"), "d");
    EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(Args, RejectsMalformedValues) {
    const char* argv[] = {"prog", "--n", "abc"};
    const Args args(3, argv);
    EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
    EXPECT_THROW((void)args.get_bool("n", false), std::invalid_argument);
}

// ----------------------------------------------------------------- Stats

TEST(Stats, SummaryOfKnownSeries) {
    const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    const auto s = summarize(values);
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.median, 4.5);
    EXPECT_NEAR(s.stddev, 2.138, 1e-3);
}

TEST(Stats, EmptyAndSingle) {
    EXPECT_EQ(summarize({}).count, 0u);
    const double one[] = {3.5};
    const auto s = summarize(one);
    EXPECT_DOUBLE_EQ(s.mean, 3.5);
    EXPECT_DOUBLE_EQ(s.median, 3.5);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, GeometricMean) {
    const double values[] = {1.0, 4.0, 16.0};
    EXPECT_NEAR(repute::util::geometric_mean(values), 4.0, 1e-9);
}

} // namespace
