// Cross-module edge cases: degenerate parameters, boundary geometries,
// delta = 0 exact mapping, multi-chromosome end-to-end, and index knob
// validation.

#include <gtest/gtest.h>

#include <sstream>

#include "align/myers.hpp"
#include "util/prng.hpp"
#include "core/accuracy.hpp"
#include "core/kernels.hpp"
#include "core/repute_mapper.hpp"
#include "filter/memopt_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/device.hpp"

namespace {

using repute::core::contains_mapping;
using repute::core::ReadMapping;
using repute::genomics::FastaRecord;
using repute::genomics::GenomeSimConfig;
using repute::genomics::MultiReference;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::Strand;
using repute::index::FmIndex;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;

DeviceProfile test_profile() {
    DeviceProfile p;
    p.name = "edge-cpu";
    p.compute_units = 4;
    p.ops_per_unit_per_second = 1e9;
    p.global_memory_bytes = 1ULL << 30;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

// ------------------------------------------------------------- FM knobs

TEST(EdgeFmIndex, TinyTexts) {
    for (const char* text : {"A", "AC", "ACG", "ACGTACGT"}) {
        const auto ref = Reference::from_ascii("t", text);
        const FmIndex fm(ref, 1);
        EXPECT_EQ(fm.size(), std::string(text).size());
        // Every single-character search counts correctly.
        for (std::uint8_t c = 0; c < 4; ++c) {
            std::size_t expected = 0;
            for (const char ch : std::string(text)) {
                expected +=
                    repute::util::base_to_code(ch) == c ? 1 : 0;
            }
            const std::uint8_t pattern[] = {c};
            EXPECT_EQ(fm.search(pattern).count(), expected)
                << text << " code " << int(c);
        }
    }
}

TEST(EdgeFmIndex, RejectsBadCheckpointSpacing) {
    const auto ref = Reference::from_ascii("t", "ACGTACGTACGT");
    EXPECT_THROW(FmIndex(ref, 4, 16), std::invalid_argument);  // < 32
    EXPECT_THROW(FmIndex(ref, 4, 100), std::invalid_argument); // not 2^k
    EXPECT_NO_THROW(FmIndex(ref, 4, 32));
    EXPECT_NO_THROW(FmIndex(ref, 4, 1024));
}

TEST(EdgeFmIndex, WideCheckpointsAnswerIdentically) {
    GenomeSimConfig config;
    config.length = 20'000;
    const auto ref = simulate_genome(config);
    const FmIndex narrow(ref, 4, 32);
    const FmIndex wide(ref, 4, 1024);
    repute::util::Xoshiro256 rng(3);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t len = 4 + rng.bounded(20);
        const std::size_t pos = rng.bounded(ref.size() - len);
        const auto pattern = ref.sequence().extract(pos, len);
        EXPECT_EQ(narrow.search(pattern), wide.search(pattern));
    }
}

// -------------------------------------------------------- delta = 0

TEST(EdgeMapping, DeltaZeroIsExactMatching) {
    GenomeSimConfig gconfig;
    gconfig.length = 100'000;
    const auto ref = simulate_genome(gconfig);
    const FmIndex fm(ref, 4);
    Device dev(test_profile());

    ReadSimConfig rconfig;
    rconfig.n_reads = 150;
    rconfig.read_length = 100;
    rconfig.max_errors = 2; // some reads exact, some not
    const auto sim = simulate_reads(ref, rconfig);

    repute::core::HeterogeneousMapperConfig config;
    config.kernel.s_min = 20;
    auto mapper = repute::core::make_repute(ref, fm, {{&dev, 1.0}}, config);
    const auto result = mapper->map(sim.batch, 0);

    for (std::size_t i = 0; i < sim.batch.size(); ++i) {
        for (const auto& m : result.per_read[i]) {
            EXPECT_EQ(m.edit_distance, 0u);
        }
        ReadMapping truth;
        truth.position = sim.origins[i].position;
        truth.strand = sim.origins[i].strand;
        if (sim.origins[i].edits == 0) {
            EXPECT_TRUE(contains_mapping(result.per_read[i], truth, 0))
                << "exact read " << i << " must map at delta 0";
        }
    }
}

// --------------------------------------------- multi-chromosome mapping

TEST(EdgeMultiRef, EndToEndAcrossChromosomes) {
    // Three small chromosomes; reads sampled from each must resolve to
    // the right one.
    GenomeSimConfig gconfig;
    gconfig.length = 60'000;
    std::vector<FastaRecord> records;
    for (int c = 0; c < 3; ++c) {
        gconfig.seed = 100 + c;
        const auto chromosome = simulate_genome(gconfig);
        records.push_back({"chr" + std::to_string(c),
                           chromosome.sequence().to_string()});
    }
    const MultiReference multi(records);
    const FmIndex fm(multi.concatenated(), 4);
    Device dev(test_profile());
    auto mapper = repute::core::make_repute(multi.concatenated(), fm,
                                            {{&dev, 1.0}});

    // One exact read from the middle of each chromosome.
    repute::genomics::ReadBatch batch;
    batch.read_length = 100;
    for (int c = 0; c < 3; ++c) {
        repute::genomics::Read read;
        read.id = static_cast<std::uint32_t>(c);
        const std::uint32_t global =
            static_cast<std::uint32_t>(c) * 60'000 + 30'000;
        read.codes = multi.concatenated().sequence().extract(global, 100);
        batch.reads.push_back(std::move(read));
    }
    const auto result = mapper->map(batch, 3);

    for (int c = 0; c < 3; ++c) {
        ASSERT_FALSE(result.per_read[static_cast<std::size_t>(c)].empty());
        bool found = false;
        for (const auto& m :
             result.per_read[static_cast<std::size_t>(c)]) {
            if (!multi.within_one_sequence(m.position, 100)) continue;
            const auto loc = multi.resolve(m.position);
            if (loc.sequence_index == static_cast<std::size_t>(c) &&
                loc.offset >= 29'990 && loc.offset <= 30'010) {
                found = true;
            }
        }
        EXPECT_TRUE(found) << "chr" << c;
    }
}

// ----------------------------------------------------- split edge cases

TEST(EdgeSplit, ZeroShareDeviceGetsNoReads) {
    GenomeSimConfig gconfig;
    gconfig.length = 50'000;
    const auto ref = simulate_genome(gconfig);
    const FmIndex fm(ref, 4);
    Device a(test_profile()), b(test_profile());

    ReadSimConfig rconfig;
    rconfig.n_reads = 50;
    rconfig.read_length = 100;
    const auto sim = simulate_reads(ref, rconfig);

    // Shares {1.0, 0.0}: b is dropped at construction.
    auto mapper = repute::core::make_repute(ref, fm,
                                            {{&a, 1.0}, {&b, 0.0}});
    const auto result = mapper->map(sim.batch, 3);
    ASSERT_EQ(result.device_runs.size(), 1u);
    EXPECT_EQ(result.device_runs[0].device_name, "edge-cpu");
}

TEST(EdgeSplit, MoreDevicesThanReads) {
    GenomeSimConfig gconfig;
    gconfig.length = 50'000;
    const auto ref = simulate_genome(gconfig);
    const FmIndex fm(ref, 4);
    Device a(test_profile()), b(test_profile()), c(test_profile());

    repute::genomics::ReadBatch batch;
    batch.read_length = 100;
    repute::genomics::Read read;
    read.codes = ref.sequence().extract(123, 100);
    batch.reads.push_back(read);

    auto mapper = repute::core::make_repute(
        ref, fm, {{&a, 1.0}, {&b, 1.0}, {&c, 1.0}});
    const auto result = mapper->map(batch, 3);
    EXPECT_FALSE(result.per_read[0].empty());
    std::size_t total = 0;
    for (const auto& run : result.device_runs) total += run.reads;
    EXPECT_EQ(total, 1u);
}

// ------------------------------------------------------- Myers extremes

TEST(EdgeAlign, PatternLongerThanText) {
    const std::vector<std::uint8_t> pattern(100, 2);
    const std::vector<std::uint8_t> text(10, 2);
    const repute::align::MyersMatcher matcher(pattern);
    const auto hit = matcher.best_in(text);
    // 90 pattern bases cannot be consumed: distance 90.
    EXPECT_EQ(hit.distance, 90u);
}

TEST(EdgeAlign, BandedPatternLongerThanText) {
    // The clamped boundary window case: text shorter than the pattern
    // must not trip the banded word-range logic.
    const std::vector<std::uint8_t> pattern(100, 2);
    const std::vector<std::uint8_t> text(10, 2);
    const repute::align::MyersMatcher matcher(pattern);
    for (const std::uint32_t delta : {0u, 5u, 89u, 90u, 95u}) {
        const auto hit = matcher.best_in_bounded(text, delta);
        if (delta >= 90u) {
            EXPECT_EQ(hit.distance, 90u) << "delta " << delta;
        } else {
            EXPECT_GT(hit.distance, delta) << "delta " << delta;
        }
    }
}

// ------------------------------------- reference-boundary candidates

TEST(EdgeMapping, ReadsAtReferenceBoundariesMapWithFunnelOnAndOff) {
    // Reads planted at position 0 and at ref_len - read_len force the
    // kernel's window clamping on both edges: the left window loses its
    // delta pad (win_lo clamps to 0) and the right one is truncated at
    // text_len. Both must map identically with every funnel layer on
    // and off.
    GenomeSimConfig gconfig;
    gconfig.length = 30'000;
    gconfig.seed = 77;
    const auto ref = simulate_genome(gconfig);
    const FmIndex fm(ref, 4);
    const std::uint32_t n = 100;
    const auto ref_len = static_cast<std::uint32_t>(ref.size());

    repute::genomics::ReadBatch batch;
    batch.read_length = n;
    std::uint32_t id = 0;
    for (const std::uint32_t pos : {0u, ref_len - n}) {
        // One exact read and one with a few substitutions.
        for (const int edits : {0, 3}) {
            repute::genomics::Read read;
            read.id = id++;
            read.codes = ref.sequence().extract(pos, n);
            for (int e = 0; e < edits; ++e) {
                auto& c = read.codes[static_cast<std::size_t>(7 + 31 * e)];
                c = static_cast<std::uint8_t>((c + 1) & 3);
            }
            batch.reads.push_back(std::move(read));
        }
    }

    repute::core::KernelConfig funnel_on;
    repute::core::KernelConfig funnel_off;
    funnel_off.prefilter = false;
    funnel_off.banded_verification = false;
    funnel_off.coalesce_windows = false;
    const repute::filter::MemoryOptimizedSeeder seeder(12);

    std::vector<ReadMapping> out_on, out_off;
    for (std::size_t i = 0; i < batch.reads.size(); ++i) {
        const auto& read = batch.reads[i];
        repute::core::map_read_workitem(fm, ref, seeder, read, 5,
                                        funnel_on, out_on, nullptr);
        repute::core::map_read_workitem(fm, ref, seeder, read, 5,
                                        funnel_off, out_off, nullptr);
        ASSERT_EQ(out_on, out_off) << "read " << read.id;

        const std::uint32_t expected = i < 2 ? 0u : ref_len - n;
        ReadMapping truth;
        truth.position = expected;
        truth.strand = Strand::Forward;
        EXPECT_TRUE(contains_mapping(out_on, truth, 0))
            << "boundary read " << read.id << " at " << expected;
    }
}

} // namespace
