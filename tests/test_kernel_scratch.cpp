// Zero-allocation steady state: after one warm-up pass has sized every
// KernelScratch buffer, repeated map_read_workitem calls must not touch
// the heap at all — the host-side contract mirroring statically budgeted
// OpenCL private memory. Enforced with counting overrides of the global
// allocation functions, so this suite lives in its own binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/kernels.hpp"
#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "obs/trace.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t align) {
    ++g_allocations;
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size == 0 ? 1 : size) != 0) {
        throw std::bad_alloc();
    }
    return p;
}
} // namespace

void* operator new(std::size_t size) {
    return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
    return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
    return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

using repute::core::KernelConfig;
using repute::core::KernelScratch;
using repute::core::map_read_workitem;
using repute::core::ReadMapping;
using repute::core::StageTotals;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::index::FmIndex;

TEST(KernelScratch, SteadyStateKernelDoesNotAllocate) {
    GenomeSimConfig gconfig;
    gconfig.length = 100'000;
    gconfig.seed = 17;
    const Reference reference = simulate_genome(gconfig);
    const FmIndex fm(reference, 4);
    ReadSimConfig rconfig;
    rconfig.n_reads = 100;
    rconfig.read_length = 100;
    rconfig.max_errors = 5;
    const auto sim = simulate_reads(reference, rconfig);

    const repute::filter::MemoryOptimizedSeeder repute_seeder(12);
    const repute::filter::HeuristicSeeder coral_seeder;
    // The lane-batched verification path defers Myers scans through the
    // staging arena / job / decision buffers — the zero-allocation
    // contract must hold with it on (the default) and off.
    KernelConfig simd_on;
    simd_on.simd_verification = true;
    KernelConfig simd_off;
    simd_off.simd_verification = false;
    // No metrics registry is installed in this binary: the registry's
    // name lookups allocate and would (correctly) fail the assertion —
    // production mappers hoist counter handles, tested elsewhere.
    ASSERT_EQ(repute::obs::metrics(), nullptr);

    for (const auto* seeder :
         {static_cast<const repute::filter::Seeder*>(&repute_seeder),
          static_cast<const repute::filter::Seeder*>(&coral_seeder)}) {
        for (const auto& config : {simd_on, simd_off}) {
            const char* simd_tag =
                config.simd_verification ? "simd-on" : "simd-off";
            KernelScratch scratch;
            std::vector<ReadMapping> out;
            StageTotals stages;
            std::uint64_t warm_ops = 0;
            for (const auto& read : sim.batch.reads) {
                warm_ops += map_read_workitem(fm, reference, *seeder,
                                              read, 5, config, out,
                                              scratch, &stages);
            }
            ASSERT_TRUE(scratch.warm);
            if (config.simd_verification) {
                // The deferred staging path (arena + jobs + decisions +
                // bucket tables) must actually run here; whether jobs
                // land in full batches or the scalar tail is workload-
                // dependent (full-batch engagement is pinned in
                // test_funnel).
                ASSERT_GT(stages.simd_lanes + stages.simd_tail, 0u)
                    << "deferred verification never engaged ("
                    << seeder->name() << ")";
            }

            const std::uint64_t before = g_allocations.load();
            std::uint64_t steady_ops = 0;
            for (const auto& read : sim.batch.reads) {
                steady_ops += map_read_workitem(fm, reference, *seeder,
                                                read, 5, config, out,
                                                scratch, &stages);
            }
            const std::uint64_t after = g_allocations.load();
            EXPECT_EQ(after - before, 0u)
                << (after - before)
                << " heap allocations in steady state ("
                << seeder->name() << ", " << simd_tag << ")";
            // Identical work both passes — the warm pass maps correctly
            // too.
            EXPECT_EQ(steady_ops, warm_ops)
                << seeder->name() << ", " << simd_tag;
        }
    }
}

TEST(KernelScratch, ColdScratchStillMapsCorrectly) {
    // The allocating convenience overload and a warm scratch must agree
    // read for read.
    GenomeSimConfig gconfig;
    gconfig.length = 50'000;
    gconfig.seed = 18;
    const Reference reference = simulate_genome(gconfig);
    const FmIndex fm(reference, 4);
    ReadSimConfig rconfig;
    rconfig.n_reads = 40;
    rconfig.read_length = 100;
    const auto sim = simulate_reads(reference, rconfig);

    const repute::filter::MemoryOptimizedSeeder seeder(12);
    const KernelConfig config;
    KernelScratch scratch;
    std::vector<ReadMapping> warm_out, cold_out;
    for (const auto& read : sim.batch.reads) {
        map_read_workitem(fm, reference, seeder, read, 4, config,
                          warm_out, scratch, nullptr);
        map_read_workitem(fm, reference, seeder, read, 4, config,
                          cold_out, nullptr);
        ASSERT_EQ(warm_out, cold_out) << "read " << read.id;
    }
}

} // namespace
