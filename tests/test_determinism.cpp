// Determinism: results must be bit-identical across repeated runs,
// thread counts, and modeled device shapes — thread scheduling must
// never leak into mapping output (only into nothing at all: the time
// model itself is op-count-based and deterministic too).

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/repute_mapper.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/device.hpp"

namespace {

using repute::core::MapResult;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::SimulatedReads;
using repute::index::FmIndex;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;

DeviceProfile profile_with_units(std::uint32_t units) {
    DeviceProfile p;
    p.name = "det-" + std::to_string(units);
    p.compute_units = units;
    p.ops_per_unit_per_second = 1e9;
    p.global_memory_bytes = 1ULL << 30;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

class DeterminismTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 120'000;
        gconfig.seed = 61;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);
        ReadSimConfig rconfig;
        rconfig.n_reads = 300;
        rconfig.read_length = 100;
        rconfig.max_errors = 5;
        sim_ = new SimulatedReads(simulate_reads(*reference_, rconfig));
    }
    static void TearDownTestSuite() {
        delete sim_;
        delete fm_;
        delete reference_;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    static void expect_identical(const MapResult& a, const MapResult& b) {
        ASSERT_EQ(a.per_read.size(), b.per_read.size());
        for (std::size_t i = 0; i < a.per_read.size(); ++i) {
            ASSERT_EQ(a.per_read[i], b.per_read[i]) << "read " << i;
        }
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedReads* sim_;
};

Reference* DeterminismTest::reference_ = nullptr;
FmIndex* DeterminismTest::fm_ = nullptr;
SimulatedReads* DeterminismTest::sim_ = nullptr;

TEST_F(DeterminismTest, RepeatedRunsIdentical) {
    Device dev(profile_with_units(8));
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{&dev, 1.0}});
    const auto a = mapper->map(sim_->batch, 5);
    const auto b = mapper->map(sim_->batch, 5);
    expect_identical(a, b);
    // The modeled time is deterministic too (same ops, same model).
    EXPECT_DOUBLE_EQ(a.mapping_seconds, b.mapping_seconds);
    EXPECT_EQ(a.device_runs[0].stats.total_ops,
              b.device_runs[0].stats.total_ops);
}

TEST_F(DeterminismTest, ResultsIndependentOfComputeUnits) {
    Device narrow(profile_with_units(1));
    Device wide(profile_with_units(16));
    auto m1 = repute::core::make_repute(*reference_, *fm_,
                                        {{&narrow, 1.0}});
    auto m2 = repute::core::make_repute(*reference_, *fm_,
                                        {{&wide, 1.0}});
    const auto a = m1->map(sim_->batch, 4);
    const auto b = m2->map(sim_->batch, 4);
    expect_identical(a, b);
    // Same total ops; 16 units are modeled 16x faster.
    EXPECT_EQ(a.device_runs[0].stats.total_ops,
              b.device_runs[0].stats.total_ops);
    EXPECT_NEAR(a.mapping_seconds / b.mapping_seconds, 16.0, 0.01);
}

TEST_F(DeterminismTest, DynamicScheduleEquivalentToSingleDevice) {
    // Property: whatever the fleet shape, chunk size or failure schedule,
    // dynamic work-stealing must produce per-read output identical to a
    // fault-free single-device run — work items own disjoint slots, so
    // no schedule may leak into the results. Randomized but seeded:
    // every CI run exercises the same 8 scenarios.
    Device single(profile_with_units(8));
    auto reference_mapper = repute::core::make_repute(
        *reference_, *fm_, {{&single, 1.0}});
    const auto expected = reference_mapper->map(sim_->batch, 4);

    std::mt19937 rng(20260807);
    for (int scenario = 0; scenario < 8; ++scenario) {
        const std::size_t fleet = 1 + rng() % 4;
        std::vector<std::unique_ptr<Device>> devices;
        std::vector<repute::core::DeviceShare> shares;
        for (std::size_t d = 0; d < fleet; ++d) {
            DeviceProfile p = profile_with_units(1 + rng() % 16);
            p.name = "prop-" + std::to_string(scenario) + "-" +
                     std::to_string(d);
            p.ops_per_unit_per_second = 1e8 * static_cast<double>(
                                                  1 + rng() % 50);
            p.dispatch_overhead_seconds = 1e-4;
            devices.push_back(std::make_unique<Device>(p));
            shares.push_back({devices.back().get(),
                              static_cast<double>(1 + rng() % 9)});
        }
        // Inject a failure schedule on one device of multi-device
        // fleets; survivors must absorb its chunks.
        if (fleet > 1) {
            repute::ocl::FaultPlan plan;
            plan.fail_on_launch = 1 + rng() % 3;
            plan.fail_forever = true;
            devices[rng() % fleet]->inject_faults(plan);
        }

        repute::core::HeterogeneousMapperConfig config;
        config.schedule = repute::core::ScheduleMode::Dynamic;
        config.scheduler.chunk_items =
            (rng() % 2 == 0) ? 0 : 10 + rng() % 90;
        auto mapper = repute::core::make_repute(*reference_, *fm_,
                                                shares, config);
        const auto result = mapper->map(sim_->batch, 4);
        SCOPED_TRACE("scenario " + std::to_string(scenario));
        expect_identical(expected, result);
        EXPECT_GT(result.schedule->chunks, 0u);
    }
}

TEST_F(DeterminismTest, JumpTableInvisibleInMappingOutput) {
    // Index-layout perf knobs must never leak into results: an index
    // without the q-gram jump table (q=0) must map every read to exactly
    // the same locations as the default index — the table is an exact
    // precomputation, not an approximation.
    const FmIndex plain(*reference_, 4, 128, /*qgram_length=*/0);
    Device dev(profile_with_units(8));
    auto fast = repute::core::make_repute(*reference_, *fm_,
                                          {{&dev, 1.0}});
    auto slow = repute::core::make_repute(*reference_, plain,
                                          {{&dev, 1.0}});
    expect_identical(fast->map(sim_->batch, 5), slow->map(sim_->batch, 5));
}

TEST_F(DeterminismTest, StressRepeatedConcurrentMapping) {
    // Hammer one device with interleaved map() calls from two mappers;
    // the in-order device must serialize without corrupting results.
    Device dev(profile_with_units(8));
    auto repute_mapper = repute::core::make_repute(*reference_, *fm_,
                                                   {{&dev, 1.0}});
    auto coral_mapper = repute::core::make_coral(*reference_, *fm_,
                                                 {{&dev, 1.0}});
    const auto repute_ref = repute_mapper->map(sim_->batch, 4);
    const auto coral_ref = coral_mapper->map(sim_->batch, 4);
    for (int round = 0; round < 3; ++round) {
        expect_identical(repute_ref, repute_mapper->map(sim_->batch, 4));
        expect_identical(coral_ref, coral_mapper->map(sim_->batch, 4));
    }
}

} // namespace
