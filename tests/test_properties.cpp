// Cross-module property sweeps (parameterized): invariants that must
// hold over parameter grids, complementing the per-module example-based
// tests.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "align/edit_distance.hpp"
#include "align/myers.hpp"
#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "filter/optimal_seeder.hpp"
#include "filter/uniform_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "index/fm_index.hpp"
#include "util/prng.hpp"

namespace {

using repute::genomics::GenomeSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::index::FmIndex;
using repute::util::Xoshiro256;

const Reference& shared_reference() {
    static const Reference ref = [] {
        GenomeSimConfig config;
        config.length = 60'000;
        config.seed = 23;
        return simulate_genome(config);
    }();
    return ref;
}

// ------------------------------------------------ FM locate vs sa_sample

class SaSampleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SaSampleSweep, LocateIsSampleInvariant) {
    const auto& ref = shared_reference();
    const FmIndex sampled(ref, GetParam());
    const FmIndex dense(ref, 1);

    Xoshiro256 rng(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t len = 10 + rng.bounded(12);
        const std::size_t pos = rng.bounded(ref.size() - len);
        const auto pattern = ref.sequence().extract(pos, len);
        const auto ra = sampled.search(pattern);
        const auto rb = dense.search(pattern);
        ASSERT_EQ(ra, rb);
        std::vector<std::uint32_t> ha, hb;
        sampled.locate_range(ra, ra.count(), ha);
        dense.locate_range(rb, rb.count(), hb);
        std::sort(ha.begin(), ha.end());
        std::sort(hb.begin(), hb.end());
        EXPECT_EQ(ha, hb) << "sa_sample=" << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Samples, SaSampleSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 32u));

// -------------------------------------- seeders over a parameter grid

using SeederGridParam =
    std::tuple<int /*kind*/, std::size_t /*n*/, std::uint32_t /*delta*/,
               std::uint32_t /*s_min*/>;

class SeederGrid : public ::testing::TestWithParam<SeederGridParam> {};

std::unique_ptr<repute::filter::Seeder> grid_seeder(int kind,
                                                    std::uint32_t s_min) {
    using namespace repute::filter;
    switch (kind) {
        case 0: return std::make_unique<UniformSeeder>(s_min);
        case 1: return std::make_unique<HeuristicSeeder>(s_min);
        case 2: return std::make_unique<OptimalSeeder>(s_min);
        default: return std::make_unique<MemoryOptimizedSeeder>(s_min);
    }
}

TEST_P(SeederGrid, PartitionInvariantsHold) {
    const auto [kind, n, delta, s_min] = GetParam();
    if (static_cast<std::uint64_t>(delta + 1) * s_min > n) {
        GTEST_SKIP() << "infeasible cell";
    }
    const auto& ref = shared_reference();
    const FmIndex fm(ref, 4);
    const auto seeder = grid_seeder(kind, s_min);

    Xoshiro256 rng(n * 100 + delta * 10 + s_min);
    for (int trial = 0; trial < 5; ++trial) {
        const std::size_t pos = rng.bounded(ref.size() - n);
        const auto read = ref.sequence().extract(pos, n);
        const auto plan = seeder->select(fm, read, delta);

        // Exactly delta+1 seeds partitioning [0, n), each >= s_min.
        ASSERT_EQ(plan.seeds.size(), delta + 1);
        std::uint32_t cursor = 0;
        std::uint64_t sum = 0;
        for (const auto& seed : plan.seeds) {
            EXPECT_EQ(seed.start, cursor);
            EXPECT_GE(seed.length, s_min);
            // The seed's range really counts its occurrences.
            const auto direct = fm.search(
                std::span(read).subspan(seed.start, seed.length));
            EXPECT_EQ(seed.range.count(), direct.count());
            sum += seed.range.count();
            cursor += seed.length;
        }
        EXPECT_EQ(cursor, n);
        EXPECT_EQ(plan.total_candidates, sum);
        // An exact read always has at least one exact seed somewhere.
        EXPECT_GE(plan.total_candidates, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeederGrid,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::size_t>(100, 150),
                       ::testing::Values<std::uint32_t>(3, 5, 7),
                       ::testing::Values<std::uint32_t>(10, 14, 18)));

// ----------------------------- Myers == banded == full DP, random grid

class VerifierAgreement
    : public ::testing::TestWithParam<std::uint32_t /*delta*/> {};

TEST_P(VerifierAgreement, AllThreeVerifiersAgreeOnAcceptance) {
    const std::uint32_t delta = GetParam();
    const auto& ref = shared_reference();
    Xoshiro256 rng(delta * 7 + 1);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 100;
        const std::size_t pos = rng.bounded(ref.size() - n - 2 * delta);
        auto read = ref.sequence().extract(pos, n);
        // Corrupt with a random number of substitutions.
        const auto subs = rng.bounded(2 * delta + 1);
        for (std::uint64_t s = 0; s < subs; ++s) {
            const std::size_t at = rng.bounded(n);
            read[at] = static_cast<std::uint8_t>((read[at] + 1) & 3);
        }
        const auto window =
            ref.sequence().extract(pos, n + 2 * delta);

        const auto full =
            repute::align::semiglobal_distance(read, window);
        const repute::align::MyersMatcher matcher(read);
        const auto myers = matcher.best_in(window).distance;
        const auto banded = repute::align::banded_semiglobal_distance(
            read, window, delta);

        EXPECT_EQ(myers, full);
        // The banded verifier agrees on the accept/reject decision.
        EXPECT_EQ(banded <= delta, full <= delta);
        if (full <= delta) EXPECT_EQ(banded, full);
    }
}

INSTANTIATE_TEST_SUITE_P(Deltas, VerifierAgreement,
                         ::testing::Values(1u, 3u, 5u, 7u));

} // namespace
