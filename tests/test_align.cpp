// Alignment kernels: the DP references against hand-checked cases, and
// the Myers bit-vector / banded DP against the full DP on random sweeps.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "align/edit_distance.hpp"
#include "align/myers.hpp"
#include "util/packed_dna.hpp"
#include "util/prng.hpp"

namespace {

using repute::align::banded_semiglobal_distance;
using repute::align::levenshtein;
using repute::align::MyersMatcher;
using repute::align::semiglobal_align;
using repute::align::semiglobal_distance;
using repute::util::Xoshiro256;

std::vector<std::uint8_t> codes(const std::string& s) {
    std::vector<std::uint8_t> out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        out[i] = repute::util::base_to_code(s[i]);
    }
    return out;
}

std::vector<std::uint8_t> random_codes(Xoshiro256& rng, std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& c : out) c = static_cast<std::uint8_t>(rng.bounded(4));
    return out;
}

/// Applies up to `edits` random edits to a copy of `base`.
std::vector<std::uint8_t> mutate(Xoshiro256& rng,
                                 std::vector<std::uint8_t> base,
                                 std::uint32_t edits) {
    for (std::uint32_t e = 0; e < edits && !base.empty(); ++e) {
        const auto kind = rng.bounded(3);
        const std::size_t pos = rng.bounded(base.size());
        if (kind == 0) {
            base[pos] =
                static_cast<std::uint8_t>((base[pos] + 1 + rng.bounded(3)) & 3);
        } else if (kind == 1) {
            base.insert(base.begin() + static_cast<std::ptrdiff_t>(pos),
                        static_cast<std::uint8_t>(rng.bounded(4)));
        } else {
            base.erase(base.begin() + static_cast<std::ptrdiff_t>(pos));
        }
    }
    return base;
}

// ----------------------------------------------------------- references

TEST(Levenshtein, HandCheckedCases) {
    EXPECT_EQ(levenshtein(codes(""), codes("")), 0u);
    EXPECT_EQ(levenshtein(codes("ACGT"), codes("ACGT")), 0u);
    EXPECT_EQ(levenshtein(codes("ACGT"), codes("")), 4u);
    EXPECT_EQ(levenshtein(codes("ACGT"), codes("AGT")), 1u);  // deletion
    EXPECT_EQ(levenshtein(codes("ACGT"), codes("AACGT")), 1u); // insertion
    EXPECT_EQ(levenshtein(codes("ACGT"), codes("ACCT")), 1u);  // sub
    EXPECT_EQ(levenshtein(codes("AAAA"), codes("TTTT")), 4u);
    EXPECT_EQ(levenshtein(codes("GATTACA"), codes("TACT")), 4u);
}

TEST(Levenshtein, SymmetricAndTriangle) {
    Xoshiro256 rng(5);
    for (int i = 0; i < 40; ++i) {
        const auto a = random_codes(rng, 1 + rng.bounded(40));
        const auto b = random_codes(rng, 1 + rng.bounded(40));
        const auto c = random_codes(rng, 1 + rng.bounded(40));
        const auto ab = levenshtein(a, b);
        EXPECT_EQ(ab, levenshtein(b, a));
        EXPECT_LE(levenshtein(a, c), ab + levenshtein(b, c));
    }
}

TEST(SemiGlobal, ZeroWhenPatternIsSubstring) {
    EXPECT_EQ(semiglobal_distance(codes("TACA"), codes("GATTACAG")), 0u);
    EXPECT_EQ(semiglobal_distance(codes("GATT"), codes("GATTACAG")), 0u);
    EXPECT_EQ(semiglobal_distance(codes("ACAG"), codes("GATTACAG")), 0u);
}

TEST(SemiGlobal, NeverExceedsGlobalDistance) {
    Xoshiro256 rng(17);
    for (int i = 0; i < 60; ++i) {
        const auto p = random_codes(rng, 1 + rng.bounded(30));
        const auto t = random_codes(rng, 1 + rng.bounded(60));
        EXPECT_LE(semiglobal_distance(p, t), levenshtein(p, t));
        EXPECT_LE(semiglobal_distance(p, t), p.size());
    }
}

TEST(SemiGlobalAlign, TracebackConsistency) {
    const auto result =
        semiglobal_align(codes("TACA"), codes("GATTACAG"), 1);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->distance, 0u);
    EXPECT_EQ(result->cigar, "4M");
    EXPECT_EQ(result->text_start, 3u);
    EXPECT_EQ(result->text_end, 7u);
}

TEST(SemiGlobalAlign, RejectsAboveMaxDistance) {
    EXPECT_FALSE(
        semiglobal_align(codes("AAAA"), codes("TTTTTTTT"), 2).has_value());
    EXPECT_TRUE(
        semiglobal_align(codes("AAAA"), codes("TTTTTTTT"), 4).has_value());
}

TEST(SemiGlobalAlign, CigarConsumesWholePattern) {
    Xoshiro256 rng(23);
    for (int i = 0; i < 40; ++i) {
        const auto p = random_codes(rng, 4 + rng.bounded(40));
        const auto t = mutate(rng, p, rng.bounded(4));
        if (t.empty()) continue;
        const auto result = semiglobal_align(
            p, t, static_cast<std::uint32_t>(p.size()));
        ASSERT_TRUE(result.has_value());
        // Parse CIGAR: M and I consume pattern bases.
        std::size_t consumed = 0, num = 0;
        for (const char c : result->cigar) {
            if (c >= '0' && c <= '9') {
                num = num * 10 + static_cast<std::size_t>(c - '0');
            } else {
                if (c == 'M' || c == 'I') consumed += num;
                num = 0;
            }
        }
        EXPECT_EQ(consumed, p.size()) << "cigar " << result->cigar;
        EXPECT_EQ(result->distance, semiglobal_distance(p, t));
    }
}

// ----------------------------------------------------------- banded DP

TEST(BandedSemiGlobal, MatchesFullDpWithinBand) {
    Xoshiro256 rng(31);
    for (int i = 0; i < 120; ++i) {
        const auto p = random_codes(rng, 8 + rng.bounded(60));
        const auto edits = static_cast<std::uint32_t>(rng.bounded(6));
        auto t = mutate(rng, p, edits);
        if (t.empty()) t = random_codes(rng, 4);
        const std::uint32_t band = 1 + static_cast<std::uint32_t>(
                                           rng.bounded(8));
        const auto exact = semiglobal_distance(p, t);
        const auto banded = banded_semiglobal_distance(p, t, band);
        if (exact <= band) {
            EXPECT_EQ(banded, exact)
                << "band " << band << " |p|=" << p.size()
                << " |t|=" << t.size();
        } else {
            EXPECT_EQ(banded, band + 1);
        }
    }
}

// -------------------------------------------------------- Myers matcher

TEST(Myers, RejectsBadPatterns) {
    EXPECT_THROW(MyersMatcher(codes("")), std::invalid_argument);
    EXPECT_THROW(MyersMatcher(std::vector<std::uint8_t>(513, 0)),
                 std::invalid_argument);
    EXPECT_NO_THROW(MyersMatcher(std::vector<std::uint8_t>(512, 1)));
}

TEST(Myers, ExactSubstringScoresZero) {
    const MyersMatcher m(codes("TTACA"));
    const auto hit = m.best_in(codes("GATTACAGATT"));
    EXPECT_EQ(hit.distance, 0u);
    EXPECT_EQ(hit.text_end, 7u);
}

class MyersSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(MyersSweep, MatchesFullDpSemiGlobal) {
    const auto [pattern_len, seed] = GetParam();
    Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 1000 + pattern_len);
    for (int trial = 0; trial < 25; ++trial) {
        const auto p = random_codes(rng, pattern_len);
        // Mix of related and unrelated texts around the pattern length.
        std::vector<std::uint8_t> t;
        if (rng.chance(0.6)) {
            t = mutate(rng, p, static_cast<std::uint32_t>(rng.bounded(10)));
            // Embed in flanking sequence.
            auto left = random_codes(rng, rng.bounded(20));
            auto right = random_codes(rng, rng.bounded(20));
            left.insert(left.end(), t.begin(), t.end());
            left.insert(left.end(), right.begin(), right.end());
            t = std::move(left);
        } else {
            t = random_codes(rng, 1 + rng.bounded(2 * pattern_len));
        }
        const MyersMatcher m(p);
        const auto hit = m.best_in(t);
        EXPECT_EQ(hit.distance, semiglobal_distance(p, t))
            << "len " << pattern_len << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, MyersSweep,
    ::testing::Combine(
        // Word-boundary cases matter: 1 word (<=64), exactly 64,
        // 2 words (100, 128), 3 words (150, 192), 4+ (200, 300).
        ::testing::Values<std::size_t>(5, 17, 33, 63, 64, 65, 100, 127,
                                       128, 129, 150, 192, 200, 300),
        ::testing::Values(1, 2, 3)));

TEST(Myers, EarliestBestEndReported) {
    // Pattern occurs twice exactly; the earlier end must win.
    const MyersMatcher m(codes("ACGT"));
    const auto hit = m.best_in(codes("TTACGTTTACGTTT"));
    EXPECT_EQ(hit.distance, 0u);
    EXPECT_EQ(hit.text_end, 6u);
}

TEST(Myers, ScanCostScalesWithWords) {
    Xoshiro256 rng(1);
    const MyersMatcher one_word(random_codes(rng, 64));
    const MyersMatcher three_words(random_codes(rng, 150));
    EXPECT_EQ(one_word.scan_cost(100), 100u);
    EXPECT_EQ(three_words.scan_cost(100), 300u);
}

TEST(Myers, EmptyTextReturnsPatternLength) {
    const MyersMatcher m(codes("ACGTACGT"));
    const auto hit = m.best_in({});
    EXPECT_EQ(hit.distance, 8u);
    EXPECT_EQ(hit.text_end, 0u);
}

// ------------------------------------------------- banded Myers matcher

class MyersBandedSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(MyersBandedSweep, AgreesWithFullScanAtEveryDelta) {
    const auto [pattern_len, seed] = GetParam();
    Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7777 + pattern_len);
    for (int trial = 0; trial < 25; ++trial) {
        const auto p = random_codes(rng, pattern_len);
        std::vector<std::uint8_t> t;
        if (rng.chance(0.6)) {
            t = mutate(rng, p, static_cast<std::uint32_t>(rng.bounded(10)));
            auto left = random_codes(rng, rng.bounded(20));
            auto right = random_codes(rng, rng.bounded(20));
            left.insert(left.end(), t.begin(), t.end());
            left.insert(left.end(), right.begin(), right.end());
            t = std::move(left);
        } else {
            t = random_codes(rng, 1 + rng.bounded(2 * pattern_len));
        }
        const MyersMatcher m(p);
        const auto full = m.best_in(t);
        const auto full_ops = m.last_word_ops();
        EXPECT_EQ(full_ops, m.scan_cost(t.size()));
        for (std::uint32_t delta = 0; delta <= 8; ++delta) {
            const auto banded = m.best_in_bounded(t, delta);
            if (full.distance <= delta) {
                // Exact contract below the bound: same distance, same
                // earliest end.
                EXPECT_EQ(banded.distance, full.distance)
                    << "len " << pattern_len << " delta " << delta;
                EXPECT_EQ(banded.text_end, full.text_end)
                    << "len " << pattern_len << " delta " << delta;
            } else {
                EXPECT_GT(banded.distance, delta)
                    << "len " << pattern_len << " delta " << delta;
            }
            // The banded scan never does more work than the full scan.
            EXPECT_LE(m.last_word_ops(), full_ops);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, MyersBandedSweep,
    ::testing::Combine(
        ::testing::Values<std::size_t>(5, 17, 63, 64, 65, 100, 127, 128,
                                       129, 150, 192, 200, 300),
        ::testing::Values(1, 2, 3)));

TEST(MyersBanded, SkipsWordsOutsideTheBand) {
    // n=300 (5 words), short window: the band never reaches the high
    // words early and freezes low words late, so the banded scan must
    // do measurably fewer word-columns than the full scan.
    Xoshiro256 rng(99);
    const auto p = random_codes(rng, 300);
    const auto t = random_codes(rng, 310);
    const MyersMatcher m(p);
    (void)m.best_in(t);
    const auto full_ops = m.last_word_ops();
    (void)m.best_in_bounded(t, 5);
    EXPECT_LT(m.last_word_ops(), full_ops / 2)
        << "banded scan did " << m.last_word_ops() << " of " << full_ops;
}

TEST(MyersBanded, EarlyExitOnHopelessWindowIsFlagged) {
    // All-A pattern vs all-T text: the bottom score stays ~m, so the
    // Lipschitz bound abandons the scan long before the last column.
    const std::vector<std::uint8_t> p(100, 0), t(500, 3);
    const MyersMatcher m(p);
    const auto hit = m.best_in_bounded(t, 5);
    EXPECT_GT(hit.distance, 5u);
    EXPECT_TRUE(hit.early_exit);
    EXPECT_LT(m.last_word_ops(), m.scan_cost(t.size()));
}

TEST(MyersBanded, ExactHitStopsAtZero) {
    const MyersMatcher m(codes("ACGT"));
    const auto hit = m.best_in_bounded(codes("TTACGTTTACGTTT"), 1);
    EXPECT_EQ(hit.distance, 0u);
    EXPECT_EQ(hit.text_end, 6u);
    EXPECT_TRUE(hit.early_exit);
}

TEST(MyersBanded, WindowShorterThanPattern) {
    // Clamped windows at reference boundaries can be shorter than the
    // read; the scan must survive and agree with the full DP.
    Xoshiro256 rng(123);
    for (int trial = 0; trial < 40; ++trial) {
        const auto p = random_codes(rng, 20 + rng.bounded(120));
        const auto t = random_codes(rng, 1 + rng.bounded(p.size() - 1));
        const MyersMatcher m(p);
        const auto full = m.best_in(t);
        for (const std::uint32_t delta : {0u, 3u, 5u}) {
            const auto banded = m.best_in_bounded(t, delta);
            if (full.distance <= delta) {
                EXPECT_EQ(banded.distance, full.distance);
                EXPECT_EQ(banded.text_end, full.text_end);
            } else {
                EXPECT_GT(banded.distance, delta);
            }
        }
    }
}

TEST(MyersBanded, EmptyTextReturnsPatternLength) {
    const MyersMatcher m(codes("ACGTACGT"));
    const auto hit = m.best_in_bounded({}, 3);
    EXPECT_EQ(hit.distance, 8u);
    EXPECT_EQ(hit.text_end, 0u);
    EXPECT_FALSE(hit.early_exit);
    EXPECT_EQ(m.last_word_ops(), 0u);
}

} // namespace
