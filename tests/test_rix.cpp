// .rix container round-trip and rejection properties.
//
// The headline property: build -> write_rix -> mmap-load must be
// invisible to mapping. A session over the mapped view produces SAM
// byte-identical to the session that built the index in-process, across
// q-gram table sizes and multi-sequence references. The rejection half
// pins the failure modes DESIGN.md promises distinct errors for:
// truncation, bit flips (header and section payloads), legacy stream
// images, foreign versions and plain garbage.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "index/rix.hpp"
#include "index/rixm.hpp"
#include "pipeline/mapping_api.hpp"

namespace repute {
namespace {

std::vector<genomics::FastaRecord> three_sequences(std::size_t length,
                                                   std::uint64_t seed) {
    genomics::GenomeSimConfig gconfig;
    gconfig.length = length;
    gconfig.seed = seed;
    const genomics::Reference genome = genomics::simulate_genome(gconfig);
    const std::string text = genome.sequence().to_string();
    const std::size_t third = text.size() / 3;
    return {{"chrA", text.substr(0, third)},
            {"chrB", text.substr(third, third)},
            {"chrC", text.substr(2 * third)}};
}

std::string fastq_text(const genomics::SimulatedReads& sim) {
    std::ostringstream out;
    genomics::write_fastq(out, genomics::to_fastq_records(sim));
    return out.str();
}

std::string map_all(pipeline::MappingSession& session,
                    const std::string& fastq, std::uint32_t delta) {
    std::istringstream in(fastq);
    pipeline::MapRequest request;
    request.reads = &in;
    request.delta = delta;
    std::ostringstream sam;
    session.map(request, sam);
    return sam.str();
}

std::string temp_rix_path(const std::string& tag) {
    return testing::TempDir() + "repute_test_" + tag + ".rix";
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Writes a valid container for a small 3-sequence reference and
/// returns its path (overwritten on each call with the same tag).
std::string write_valid_rix(const std::string& tag,
                            std::uint32_t qgram_length = 4) {
    const genomics::MultiReference multi(three_sequences(9'000, 11));
    const index::FmIndex fm(multi.concatenated(), /*sa_sample=*/4,
                            /*checkpoint_every=*/128, qgram_length);
    const std::string path = temp_rix_path(tag);
    index::write_rix(path, multi, fm);
    return path;
}

void expect_open_throws_with(const std::string& path,
                             const std::string& needle) {
    try {
        index::MappedIndex::open(path);
        FAIL() << "open(" << path << ") did not throw; expected \""
               << needle << "\"";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual message: " << e.what();
    }
}

// ---------------------------------------------------------------------
// Round trips

TEST(RixRoundTrip, SamByteIdenticalAcrossQgramLengths) {
    for (const std::uint32_t q : {0u, 4u, 8u}) {
        pipeline::SessionConfig config;
        config.qgram_length = q;
        auto built = pipeline::MappingSession::from_multi(
            genomics::MultiReference(three_sequences(12'000, 7)), config);
        ASSERT_FALSE(built->is_mapped());

        const std::string path =
            temp_rix_path("q" + std::to_string(q));
        index::write_rix(path, built->multi(), built->fm());
        auto served = pipeline::MappingSession::from_rix(path, config);
        ASSERT_TRUE(served->is_mapped());

        genomics::ReadSimConfig rconfig;
        rconfig.n_reads = 300;
        rconfig.read_length = 60;
        rconfig.max_errors = 3;
        rconfig.seed = 100 + q;
        const auto reads = genomics::simulate_reads(
            built->multi().concatenated(), rconfig);
        const std::string fastq = fastq_text(reads);

        EXPECT_EQ(map_all(*built, fastq, 3), map_all(*served, fastq, 3))
            << "SAM diverged at q=" << q;
        std::remove(path.c_str());
    }
}

TEST(RixRoundTrip, MultiReferenceTablesSurvive) {
    auto built = pipeline::MappingSession::from_multi(
        genomics::MultiReference(three_sequences(9'000, 3)));
    const std::string path = temp_rix_path("tables");
    index::write_rix(path, built->multi(), built->fm());

    const index::MappedIndex mapped = index::MappedIndex::open(path);
    const auto& original = built->multi();
    const auto& loaded = mapped.multi();
    ASSERT_EQ(loaded.sequence_count(), original.sequence_count());
    for (std::size_t i = 0; i < original.sequence_count(); ++i) {
        EXPECT_EQ(loaded.sequence_name(i), original.sequence_name(i));
        EXPECT_EQ(loaded.sequence_length(i), original.sequence_length(i));
    }
    EXPECT_EQ(loaded.starts(), original.starts());
    EXPECT_EQ(loaded.concatenated().name(),
              original.concatenated().name());
    EXPECT_EQ(loaded.concatenated().size(),
              original.concatenated().size());

    // Footprint split: the mapping carries the big arrays, the heap
    // only rank directories and name tables.
    EXPECT_TRUE(mapped.fm().is_view());
    EXPECT_GT(mapped.mapped_bytes(), 0u);
    EXPECT_GT(mapped.resident_bytes(), 0u);
    EXPECT_LT(mapped.resident_bytes(), mapped.mapped_bytes());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Rejection

TEST(RixRejects, TruncatedFile) {
    const std::string path = write_valid_rix("trunc");
    const std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 2 * index::rix::kPageBytes);
    spill(path, bytes.substr(0, bytes.size() - index::rix::kPageBytes));
    expect_open_throws_with(path, "truncated");

    spill(path, bytes.substr(0, 16)); // smaller than the header
    expect_open_throws_with(path, "too small");
    std::remove(path.c_str());
}

TEST(RixRejects, BitFlipInSectionPayload) {
    const std::string path = write_valid_rix("flip_section");
    std::string bytes = slurp(path);
    // Page 0 is the header; the first section (rank blocks, never
    // empty) starts at page 1.
    const std::size_t target = index::rix::kPageBytes + 8;
    ASSERT_LT(target, bytes.size());
    bytes[target] = static_cast<char>(bytes[target] ^ 0x10);
    spill(path, bytes);
    expect_open_throws_with(path, "checksum mismatch in section");
    std::remove(path.c_str());
}

TEST(RixRejects, BitFlipInHeader) {
    const std::string path = write_valid_rix("flip_header");
    std::string bytes = slurp(path);
    // Offset 24 is inside the text-length field — past the up-front
    // magic/version/endian/page checks, so the checksum must catch it.
    bytes[24] = static_cast<char>(bytes[24] ^ 0x01);
    spill(path, bytes);
    expect_open_throws_with(path, "header checksum mismatch");
    std::remove(path.c_str());
}

TEST(RixRejects, LegacyStreamImageAndGarbage) {
    const std::string path = temp_rix_path("legacy");
    for (const std::uint32_t magic : {0x464D4932u, 0x464D4958u}) {
        std::string bytes(sizeof(index::rix::Header), '\0');
        std::memcpy(bytes.data(), &magic, sizeof(magic));
        spill(path, bytes);
        expect_open_throws_with(path, "legacy FMI stream image");
        expect_open_throws_with(path, "repute index build");
    }
    std::string garbage(sizeof(index::rix::Header), 'x');
    spill(path, garbage);
    expect_open_throws_with(path, "bad magic");
    std::remove(path.c_str());
}

TEST(RixRejects, ForeignVersion) {
    const std::string path = write_valid_rix("version");
    std::string bytes = slurp(path);
    const std::uint32_t future = 99;
    std::memcpy(bytes.data() + 4, &future, sizeof(future));
    spill(path, bytes);
    expect_open_throws_with(path, "unsupported version");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// .rixm shard manifests: every failure mode promised distinct in
// rixm.hpp, plus cross-misuse of the two formats.

struct ShardedFixture {
    std::string manifest;
    std::vector<std::string> shard_paths;
};

/// Builds a small 2-shard set under TempDir and returns its paths.
ShardedFixture write_valid_sharded(const std::string& tag) {
    const genomics::MultiReference multi(three_sequences(9'000, 13));
    index::ShardBuildConfig config;
    config.plan.shard_count = 2;
    config.plan.overlap = 64;
    const auto built = index::build_sharded_index(
        multi, testing::TempDir() + "repute_test_" + tag + ".rixm",
        config);
    return {built.manifest_path, built.shard_paths};
}

void remove_sharded(const ShardedFixture& fx) {
    for (const auto& p : fx.shard_paths) std::remove(p.c_str());
    std::remove(fx.manifest.c_str());
}

void expect_sharded_open_throws_with(const std::string& path,
                                     const std::string& needle) {
    try {
        index::ShardedIndex::open(path);
        FAIL() << "open(" << path << ") did not throw; expected \""
               << needle << "\"";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual message: " << e.what();
    }
}

TEST(RixmManifest, SniffsFormatsApart) {
    const ShardedFixture fx = write_valid_sharded("sniff");
    const std::string rix = write_valid_rix("sniff_mono");
    EXPECT_TRUE(index::is_rixm_manifest(fx.manifest));
    EXPECT_FALSE(index::is_rixm_manifest(rix));
    EXPECT_FALSE(index::is_rixm_manifest(rix + ".does-not-exist"));
    std::remove(rix.c_str());
    remove_sharded(fx);
}

TEST(RixmManifest, OpensAndReassemblesTheReference) {
    const genomics::MultiReference multi(three_sequences(9'000, 13));
    const ShardedFixture fx = write_valid_sharded("open");
    const auto sharded = index::ShardedIndex::open(fx.manifest);
    ASSERT_EQ(sharded.shards().size(), 2u);
    ASSERT_EQ(sharded.multi().sequence_count(), multi.sequence_count());
    for (std::size_t i = 0; i < multi.sequence_count(); ++i) {
        EXPECT_EQ(sharded.multi().sequence_name(i),
                  multi.sequence_name(i));
        EXPECT_EQ(sharded.multi().sequence_length(i),
                  multi.sequence_length(i));
    }
    // The reassembled text must be the original, byte for byte.
    EXPECT_EQ(sharded.multi().concatenated().sequence().to_string(),
              multi.concatenated().sequence().to_string());
    EXPECT_GT(sharded.mapped_bytes(), 0u);
    EXPECT_GT(sharded.resident_bytes(), 0u);
    remove_sharded(fx);
}

TEST(RixmRejects, MissingShardFile) {
    const ShardedFixture fx = write_valid_sharded("missing");
    std::remove(fx.shard_paths[1].c_str());
    expect_sharded_open_throws_with(fx.manifest, "missing shard file");
    expect_sharded_open_throws_with(fx.manifest, "shard 1");
    remove_sharded(fx);
}

TEST(RixmRejects, ShardRebuiltBehindTheManifest) {
    // Overwrite shard 0 with a valid .rix built from something else:
    // structurally fine, but the header-checksum pin must catch it.
    const ShardedFixture fx = write_valid_sharded("rebuilt");
    const std::string foreign = write_valid_rix("rebuilt_foreign");
    spill(fx.shard_paths[0], slurp(foreign));
    std::remove(foreign.c_str());
    expect_sharded_open_throws_with(fx.manifest,
                                    "header checksum mismatch");
    expect_sharded_open_throws_with(fx.manifest, "shard 0");
    remove_sharded(fx);
}

TEST(RixmRejects, ShardVersionSkew) {
    // A future-version shard under a current manifest: mixed-version
    // sets fail with the shard named and the .rix version message kept.
    const ShardedFixture fx = write_valid_sharded("skew");
    std::string bytes = slurp(fx.shard_paths[1]);
    const std::uint32_t future = 7;
    std::memcpy(bytes.data() + 4, &future, sizeof(future));
    spill(fx.shard_paths[1], bytes);
    expect_sharded_open_throws_with(fx.manifest, "unsupported version");
    expect_sharded_open_throws_with(fx.manifest, "shard 1");
    remove_sharded(fx);
}

TEST(RixmRejects, GarbageShardFile) {
    const ShardedFixture fx = write_valid_sharded("garbage");
    spill(fx.shard_paths[0],
          std::string(sizeof(index::rix::Header), 'x'));
    expect_sharded_open_throws_with(fx.manifest, "bad magic");
    remove_sharded(fx);
}

TEST(RixmRejects, ForeignManifestVersion) {
    const ShardedFixture fx = write_valid_sharded("mversion");
    std::string text = slurp(fx.manifest);
    text.replace(text.find("RIXM\t1"), 6, "RIXM\t9");
    spill(fx.manifest, text);
    expect_sharded_open_throws_with(fx.manifest,
                                    "unsupported manifest version 9");
    remove_sharded(fx);
}

TEST(RixmRejects, TruncatedManifest) {
    const ShardedFixture fx = write_valid_sharded("mtrunc");
    const std::string text = slurp(fx.manifest);
    // Drop the last shard line: the owned ranges no longer cover the
    // text (or the count disagrees) — malformed either way.
    spill(fx.manifest,
          text.substr(0, text.rfind("shard\t")));
    expect_sharded_open_throws_with(fx.manifest, "malformed manifest");
    remove_sharded(fx);
}

TEST(RixmRejects, CrossFormatMisuse) {
    // A monolithic .rix into the manifest opener and a manifest into
    // the container opener must both fail up front, distinctly.
    const ShardedFixture fx = write_valid_sharded("cross");
    const std::string rix = write_valid_rix("cross_mono");
    expect_sharded_open_throws_with(rix, "missing RIXM magic");
    // The tiny text manifest reads as either bad magic or a too-short
    // container, depending on its length vs the binary header.
    try {
        index::MappedIndex::open(fx.manifest);
        FAIL() << "MappedIndex::open accepted a .rixm manifest";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_TRUE(what.find("bad magic") != std::string::npos ||
                    what.find("too small") != std::string::npos)
            << "actual message: " << what;
    }
    std::remove(rix.c_str());
    remove_sharded(fx);
}

} // namespace
} // namespace repute
