// .rix container round-trip and rejection properties.
//
// The headline property: build -> write_rix -> mmap-load must be
// invisible to mapping. A session over the mapped view produces SAM
// byte-identical to the session that built the index in-process, across
// q-gram table sizes and multi-sequence references. The rejection half
// pins the failure modes DESIGN.md promises distinct errors for:
// truncation, bit flips (header and section payloads), legacy stream
// images, foreign versions and plain garbage.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "index/rix.hpp"
#include "pipeline/mapping_api.hpp"

namespace repute {
namespace {

std::vector<genomics::FastaRecord> three_sequences(std::size_t length,
                                                   std::uint64_t seed) {
    genomics::GenomeSimConfig gconfig;
    gconfig.length = length;
    gconfig.seed = seed;
    const genomics::Reference genome = genomics::simulate_genome(gconfig);
    const std::string text = genome.sequence().to_string();
    const std::size_t third = text.size() / 3;
    return {{"chrA", text.substr(0, third)},
            {"chrB", text.substr(third, third)},
            {"chrC", text.substr(2 * third)}};
}

std::string fastq_text(const genomics::SimulatedReads& sim) {
    std::ostringstream out;
    genomics::write_fastq(out, genomics::to_fastq_records(sim));
    return out.str();
}

std::string map_all(pipeline::MappingSession& session,
                    const std::string& fastq, std::uint32_t delta) {
    std::istringstream in(fastq);
    pipeline::MapRequest request;
    request.reads = &in;
    request.delta = delta;
    std::ostringstream sam;
    session.map(request, sam);
    return sam.str();
}

std::string temp_rix_path(const std::string& tag) {
    return testing::TempDir() + "repute_test_" + tag + ".rix";
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Writes a valid container for a small 3-sequence reference and
/// returns its path (overwritten on each call with the same tag).
std::string write_valid_rix(const std::string& tag,
                            std::uint32_t qgram_length = 4) {
    const genomics::MultiReference multi(three_sequences(9'000, 11));
    const index::FmIndex fm(multi.concatenated(), /*sa_sample=*/4,
                            /*checkpoint_every=*/128, qgram_length);
    const std::string path = temp_rix_path(tag);
    index::write_rix(path, multi, fm);
    return path;
}

void expect_open_throws_with(const std::string& path,
                             const std::string& needle) {
    try {
        index::MappedIndex::open(path);
        FAIL() << "open(" << path << ") did not throw; expected \""
               << needle << "\"";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual message: " << e.what();
    }
}

// ---------------------------------------------------------------------
// Round trips

TEST(RixRoundTrip, SamByteIdenticalAcrossQgramLengths) {
    for (const std::uint32_t q : {0u, 4u, 8u}) {
        pipeline::SessionConfig config;
        config.qgram_length = q;
        auto built = pipeline::MappingSession::from_multi(
            genomics::MultiReference(three_sequences(12'000, 7)), config);
        ASSERT_FALSE(built->is_mapped());

        const std::string path =
            temp_rix_path("q" + std::to_string(q));
        index::write_rix(path, built->multi(), built->fm());
        auto served = pipeline::MappingSession::from_rix(path, config);
        ASSERT_TRUE(served->is_mapped());

        genomics::ReadSimConfig rconfig;
        rconfig.n_reads = 300;
        rconfig.read_length = 60;
        rconfig.max_errors = 3;
        rconfig.seed = 100 + q;
        const auto reads = genomics::simulate_reads(
            built->multi().concatenated(), rconfig);
        const std::string fastq = fastq_text(reads);

        EXPECT_EQ(map_all(*built, fastq, 3), map_all(*served, fastq, 3))
            << "SAM diverged at q=" << q;
        std::remove(path.c_str());
    }
}

TEST(RixRoundTrip, MultiReferenceTablesSurvive) {
    auto built = pipeline::MappingSession::from_multi(
        genomics::MultiReference(three_sequences(9'000, 3)));
    const std::string path = temp_rix_path("tables");
    index::write_rix(path, built->multi(), built->fm());

    const index::MappedIndex mapped = index::MappedIndex::open(path);
    const auto& original = built->multi();
    const auto& loaded = mapped.multi();
    ASSERT_EQ(loaded.sequence_count(), original.sequence_count());
    for (std::size_t i = 0; i < original.sequence_count(); ++i) {
        EXPECT_EQ(loaded.sequence_name(i), original.sequence_name(i));
        EXPECT_EQ(loaded.sequence_length(i), original.sequence_length(i));
    }
    EXPECT_EQ(loaded.starts(), original.starts());
    EXPECT_EQ(loaded.concatenated().name(),
              original.concatenated().name());
    EXPECT_EQ(loaded.concatenated().size(),
              original.concatenated().size());

    // Footprint split: the mapping carries the big arrays, the heap
    // only rank directories and name tables.
    EXPECT_TRUE(mapped.fm().is_view());
    EXPECT_GT(mapped.mapped_bytes(), 0u);
    EXPECT_GT(mapped.resident_bytes(), 0u);
    EXPECT_LT(mapped.resident_bytes(), mapped.mapped_bytes());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Rejection

TEST(RixRejects, TruncatedFile) {
    const std::string path = write_valid_rix("trunc");
    const std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 2 * index::rix::kPageBytes);
    spill(path, bytes.substr(0, bytes.size() - index::rix::kPageBytes));
    expect_open_throws_with(path, "truncated");

    spill(path, bytes.substr(0, 16)); // smaller than the header
    expect_open_throws_with(path, "too small");
    std::remove(path.c_str());
}

TEST(RixRejects, BitFlipInSectionPayload) {
    const std::string path = write_valid_rix("flip_section");
    std::string bytes = slurp(path);
    // Page 0 is the header; the first section (rank blocks, never
    // empty) starts at page 1.
    const std::size_t target = index::rix::kPageBytes + 8;
    ASSERT_LT(target, bytes.size());
    bytes[target] = static_cast<char>(bytes[target] ^ 0x10);
    spill(path, bytes);
    expect_open_throws_with(path, "checksum mismatch in section");
    std::remove(path.c_str());
}

TEST(RixRejects, BitFlipInHeader) {
    const std::string path = write_valid_rix("flip_header");
    std::string bytes = slurp(path);
    // Offset 24 is inside the text-length field — past the up-front
    // magic/version/endian/page checks, so the checksum must catch it.
    bytes[24] = static_cast<char>(bytes[24] ^ 0x01);
    spill(path, bytes);
    expect_open_throws_with(path, "header checksum mismatch");
    std::remove(path.c_str());
}

TEST(RixRejects, LegacyStreamImageAndGarbage) {
    const std::string path = temp_rix_path("legacy");
    for (const std::uint32_t magic : {0x464D4932u, 0x464D4958u}) {
        std::string bytes(sizeof(index::rix::Header), '\0');
        std::memcpy(bytes.data(), &magic, sizeof(magic));
        spill(path, bytes);
        expect_open_throws_with(path, "legacy FMI stream image");
        expect_open_throws_with(path, "repute index build");
    }
    std::string garbage(sizeof(index::rix::Header), 'x');
    spill(path, garbage);
    expect_open_throws_with(path, "bad magic");
    std::remove(path.c_str());
}

TEST(RixRejects, ForeignVersion) {
    const std::string path = write_valid_rix("version");
    std::string bytes = slurp(path);
    const std::uint32_t future = 99;
    std::memcpy(bytes.data() + 4, &future, sizeof(future));
    spill(path, bytes);
    expect_open_throws_with(path, "unsupported version");
    std::remove(path.c_str());
}

} // namespace
} // namespace repute
