// baselines: the q-gram index, the shared verification helpers, and the
// five comparison mappers — each must recover simulated read origins
// appropriately for its class (all-mapper vs best-mapper).

#include <gtest/gtest.h>

#include <string>

#include "baselines/bwamem_like.hpp"
#include "baselines/gem_like.hpp"
#include "baselines/hobbes3_like.hpp"
#include "baselines/qgram_index.hpp"
#include "baselines/razers3_like.hpp"
#include "baselines/verify_common.hpp"
#include "baselines/yara_like.hpp"
#include "core/accuracy.hpp"
#include "core/repute_mapper.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "util/prng.hpp"

namespace {

using repute::baselines::BwaMemLike;
using repute::baselines::dedup_positions;
using repute::baselines::GemLike;
using repute::baselines::Hobbes3Like;
using repute::baselines::keep_best_stratum;
using repute::baselines::QGramIndex;
using repute::baselines::RazerS3Like;
using repute::baselines::YaraLike;
using repute::core::contains_mapping;
using repute::core::MapResult;
using repute::core::ReadMapping;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::SimulatedReads;
using repute::genomics::Strand;
using repute::index::FmIndex;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;
using repute::util::Xoshiro256;

DeviceProfile test_profile() {
    DeviceProfile p;
    p.name = "baseline-cpu";
    p.compute_units = 8;
    p.ops_per_unit_per_second = 1e9;
    p.global_memory_bytes = 1ULL << 32;
    p.private_memory_per_unit = 1 << 22;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

class BaselineTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 150'000;
        gconfig.seed = 33;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);

        ReadSimConfig rconfig;
        rconfig.n_reads = 200;
        rconfig.read_length = 100;
        rconfig.max_errors = 4;
        rconfig.seed = 900;
        sim_ = new SimulatedReads(simulate_reads(*reference_, rconfig));
        device_ = new Device(test_profile());
    }
    static void TearDownTestSuite() {
        delete device_;
        delete sim_;
        delete fm_;
        delete reference_;
        device_ = nullptr;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    static double origin_recovery(const MapResult& result,
                                  std::uint32_t tolerance) {
        std::size_t recovered = 0;
        for (std::size_t i = 0; i < sim_->batch.size(); ++i) {
            ReadMapping truth;
            truth.position = sim_->origins[i].position;
            truth.strand = sim_->origins[i].strand;
            if (contains_mapping(result.per_read[i], truth, tolerance)) {
                ++recovered;
            }
        }
        return static_cast<double>(recovered) /
               static_cast<double>(sim_->batch.size());
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedReads* sim_;
    static Device* device_;
};

Reference* BaselineTest::reference_ = nullptr;
FmIndex* BaselineTest::fm_ = nullptr;
SimulatedReads* BaselineTest::sim_ = nullptr;
Device* BaselineTest::device_ = nullptr;

// ------------------------------------------------------------ QGramIndex

TEST_F(BaselineTest, QGramOccurrencesMatchBruteForce) {
    const QGramIndex index(*reference_, 8);
    const std::string text = reference_->sequence().to_string();
    Xoshiro256 rng(3);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t pos = rng.bounded(text.size() - 8);
        const auto codes = reference_->sequence().extract(pos, 8);
        const auto key = QGramIndex::pack(codes, 8);
        const auto occ = index.occurrences(key);

        std::size_t expected = 0;
        const std::string pattern = text.substr(pos, 8);
        for (std::size_t i = 0; i + 8 <= text.size(); ++i) {
            if (text.compare(i, 8, pattern) == 0) ++expected;
        }
        EXPECT_EQ(occ.size(), expected) << "pattern " << pattern;
        // Every reported occurrence really is the pattern.
        for (const auto p : occ) {
            EXPECT_EQ(text.substr(p, 8), pattern);
        }
    }
}

TEST_F(BaselineTest, QGramRollMatchesPack) {
    Xoshiro256 rng(4);
    const QGramIndex index(*reference_, 10);
    const auto codes = reference_->sequence().extract(500, 40);
    std::uint64_t key = QGramIndex::pack(codes, 10);
    for (std::size_t o = 1; o + 10 <= codes.size(); ++o) {
        key = index.roll(key, codes[o + 9]);
        const auto expected = QGramIndex::pack(
            std::span(codes).subspan(o, 10), 10);
        ASSERT_EQ(key, expected) << "offset " << o;
    }
}

TEST(QGram, RejectsBadParameters) {
    const auto ref = Reference::from_ascii("t", "ACGTACGTACGT");
    EXPECT_THROW(QGramIndex(ref, 3), std::invalid_argument);
    EXPECT_THROW(QGramIndex(ref, 15), std::invalid_argument);
    EXPECT_THROW(QGramIndex(ref, 13), std::invalid_argument); // n < q
}

// --------------------------------------------------------- verify_common

TEST(VerifyCommon, DedupCollapsesWithinRadius) {
    std::vector<std::uint32_t> positions = {10, 12, 13, 30, 31, 100};
    dedup_positions(positions, 3);
    EXPECT_EQ(positions, (std::vector<std::uint32_t>{10, 30, 100}));
}

TEST(VerifyCommon, KeepBestStratum) {
    std::vector<ReadMapping> mappings(4);
    mappings[0].edit_distance = 2;
    mappings[1].edit_distance = 1;
    mappings[2].edit_distance = 1;
    mappings[3].edit_distance = 3;
    keep_best_stratum(mappings);
    ASSERT_EQ(mappings.size(), 2u);
    for (const auto& m : mappings) EXPECT_EQ(m.edit_distance, 1u);

    std::vector<ReadMapping> empty;
    keep_best_stratum(empty); // must not crash
    EXPECT_TRUE(empty.empty());
}

// -------------------------------------------------------- RazerS3 maths

TEST(RazerS3, ThresholdFormula) {
    // n=100, q=12, delta=5: (100-12+1) - 60 = 29.
    EXPECT_EQ(RazerS3Like::threshold(100, 12, 5), 29u);
    // Degenerate cases floor at 1.
    EXPECT_EQ(RazerS3Like::threshold(50, 12, 10), 1u);
}

TEST(RazerS3, ChooseQIsLossless) {
    for (const std::size_t n : {100u, 150u}) {
        for (std::uint32_t delta = 3; delta <= 7; ++delta) {
            const auto q = RazerS3Like::choose_q(n, delta);
            EXPECT_LE(q, 12u);
            EXPECT_GE(q, 4u);
            // Lossless: threshold from the lemma must be >= 1 without
            // clamping, i.e. (n-q+1) - q*delta >= 1.
            EXPECT_GE(static_cast<std::int64_t>(n - q + 1) -
                          static_cast<std::int64_t>(q) * delta,
                      1);
        }
    }
}

// ------------------------------------------------- mapper-level behavior

TEST_F(BaselineTest, RazerS3RecoversOrigins) {
    RazerS3Like mapper(*reference_, *device_);
    const auto result = mapper.map(sim_->batch, 4);
    EXPECT_GE(origin_recovery(result, 4), 0.99);
    for (const auto& m : result.per_read) EXPECT_LE(m.size(), 100u);
}

TEST_F(BaselineTest, Hobbes3RecoversOrigins) {
    Hobbes3Like mapper(*reference_, *device_);
    const auto result = mapper.map(sim_->batch, 4);
    EXPECT_GE(origin_recovery(result, 4), 0.99);
}

TEST_F(BaselineTest, YaraRecoversOriginsAnyBest) {
    YaraLike mapper(*reference_, *fm_, *device_);
    const auto result = mapper.map(sim_->batch, 4);
    EXPECT_GE(origin_recovery(result, 4), 0.90);
    // Best-mapper: every read's mappings share one edit distance.
    for (const auto& mappings : result.per_read) {
        for (const auto& m : mappings) {
            EXPECT_EQ(m.edit_distance, mappings.front().edit_distance);
        }
    }
}

TEST_F(BaselineTest, BwaMemRecoversOriginsAnyBest) {
    BwaMemLike mapper(*reference_, *fm_, *device_);
    const auto result = mapper.map(sim_->batch, 4);
    EXPECT_GE(origin_recovery(result, 4), 0.90);
}

TEST_F(BaselineTest, GemRecoversOriginsAnyBest) {
    GemLike mapper(*reference_, *fm_, *device_);
    const auto result = mapper.map(sim_->batch, 4);
    EXPECT_GE(origin_recovery(result, 4), 0.90);
}

TEST_F(BaselineTest, PowerScalesBelowOpenClMappers) {
    RazerS3Like razers(*reference_, *device_);
    Hobbes3Like hobbes(*reference_, *device_);
    YaraLike yara(*reference_, *fm_, *device_);
    EXPECT_LT(razers.power_scale(), 1.0);
    EXPECT_LT(hobbes.power_scale(), 1.0);
    EXPECT_LT(yara.power_scale(), 1.0);
}

TEST_F(BaselineTest, YaraScalesWorseWithDeltaThanRepute) {
    // The paper's Table I shape: Yara is competitive at low delta but
    // its approximate-search tree explodes with the error budget, while
    // REPUTE's DP filtration grows gently. Check the *ratio* trend
    // rather than absolute ordering (the crossover point depends on
    // genome size).
    auto repute =
        repute::core::make_repute(*reference_, *fm_, {{device_, 1.0}});
    YaraLike yara(*reference_, *fm_, *device_);

    const auto repute_low = repute->map(sim_->batch, 3).mapping_seconds;
    const auto repute_high = repute->map(sim_->batch, 7).mapping_seconds;
    const auto yara_low = yara.map(sim_->batch, 3).mapping_seconds;
    const auto yara_high = yara.map(sim_->batch, 7).mapping_seconds;

    EXPECT_GT(repute_low, 0.0);
    EXPECT_GT(yara_low, 0.0);
    const double yara_growth = yara_high / yara_low;
    const double repute_growth = repute_high / repute_low;
    EXPECT_GT(yara_growth, 2.0 * repute_growth)
        << "yara " << yara_low << " -> " << yara_high << ", repute "
        << repute_low << " -> " << repute_high;
}

TEST_F(BaselineTest, AllMappersAgreeWithGoldStandardAnyBest) {
    RazerS3Like gold_mapper(*reference_, *device_);
    const auto gold = gold_mapper.map(sim_->batch, 4);

    repute::core::AccuracyConfig config;
    config.position_tolerance = 4;

    Hobbes3Like hobbes(*reference_, *device_);
    EXPECT_GE(repute::core::any_best_accuracy(
                  gold, hobbes.map(sim_->batch, 4), config),
              99.0);

    auto repute_mapper =
        repute::core::make_repute(*reference_, *fm_, {{device_, 1.0}});
    EXPECT_GE(repute::core::any_best_accuracy(
                  gold, repute_mapper->map(sim_->batch, 4), config),
              99.0);
}

} // namespace
