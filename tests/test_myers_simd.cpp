// Lane-batched Myers verification: differential harness pinning the
// SIMD engine byte-identical to the scalar banded scan across every
// geometry the kernel can produce, the bucketing permutation property,
// and full-mapper SAM equivalence with the batched path on/off.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "align/myers.hpp"
#include "align/myers_simd.hpp"
#include "core/kernels.hpp"
#include "core/repute_mapper.hpp"
#include "filter/candidates.hpp"
#include "filter/memopt_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/read_sim.hpp"
#include "genomics/sequence.hpp"
#include "index/fm_index.hpp"
#include "ocl/device.hpp"
#include "pipeline/sam_emitter.hpp"
#include "util/prng.hpp"

namespace {

namespace align = repute::align;
namespace core = repute::core;
namespace filter = repute::filter;
namespace genomics = repute::genomics;
namespace index = repute::index;
namespace ocl = repute::ocl;
namespace pipeline = repute::pipeline;

using align::LengthBucket;
using align::MyersMatcher;
using align::MyersSimdEngine;
using repute::util::Xoshiro256;

constexpr std::size_t kLanes = MyersSimdEngine::kLanes;

std::vector<std::uint8_t> random_codes(Xoshiro256& rng, std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& c : out) c = static_cast<std::uint8_t>(rng.bounded(4));
    return out;
}

std::vector<std::uint8_t> mutated_copy(Xoshiro256& rng,
                                       std::vector<std::uint8_t> base,
                                       std::uint32_t edits) {
    for (std::uint32_t e = 0; e < edits && !base.empty(); ++e) {
        const auto kind = rng.bounded(3);
        const std::size_t pos = rng.bounded(base.size());
        if (kind == 0) {
            base[pos] = static_cast<std::uint8_t>(
                (base[pos] + 1 + rng.bounded(3)) & 3);
        } else if (kind == 1) {
            base.insert(base.begin() + static_cast<std::ptrdiff_t>(pos),
                        static_cast<std::uint8_t>(rng.bounded(4)));
        } else {
            base.erase(base.begin() + static_cast<std::ptrdiff_t>(pos));
        }
    }
    return base;
}

/// Runs one batch through the engine and asserts every lane equals the
/// scalar best_in_bounded on (distance, end column, early-exit flag).
void expect_lanes_match_scalar(
    const std::vector<std::uint8_t>& pattern,
    const std::vector<std::vector<std::uint8_t>>& windows,
    std::uint32_t delta, const char* label) {
    ASSERT_FALSE(windows.empty());
    ASSERT_LE(windows.size(), kLanes);
    const std::size_t t = windows[0].size();
    const std::uint8_t* texts[kLanes] = {};
    for (std::size_t l = 0; l < windows.size(); ++l) {
        ASSERT_EQ(windows[l].size(), t) << label;
        texts[l] = windows[l].data();
    }
    MyersSimdEngine engine(pattern);
    MyersMatcher matcher(pattern);
    MyersMatcher::BoundedHit out[kLanes];
    engine.best_in_bounded_multi(texts, windows.size(), t, delta, out);
    for (std::size_t l = 0; l < windows.size(); ++l) {
        const auto scalar = matcher.best_in_bounded(windows[l], delta);
        ASSERT_EQ(out[l].distance, scalar.distance)
            << label << ": lane " << l << " n=" << pattern.size()
            << " t=" << t << " delta=" << delta;
        ASSERT_EQ(out[l].text_end, scalar.text_end)
            << label << ": lane " << l << " n=" << pattern.size()
            << " t=" << t << " delta=" << delta;
        ASSERT_EQ(out[l].early_exit, scalar.early_exit)
            << label << ": lane " << l << " n=" << pattern.size()
            << " t=" << t << " delta=" << delta;
    }
}

// ----------------------------------------------- differential sweep

TEST(MyersSimdDifferential, RandomizedSweepMatchesScalar) {
    // Seeded, deterministic sweep: read lengths spanning the supported
    // range with the 64-bit word boundaries pinned, every δ the paper
    // uses, partial batches of every lane count, and windows mixing
    // random noise with planted mutated copies (so accept, reject, and
    // boundary-distance outcomes all occur).
    Xoshiro256 rng(20260808);
    const std::size_t lengths[] = {12,  13,  31,  63,  64,  65, 100,
                                   127, 128, 129, 200, 256, 300};
    for (const std::size_t n : lengths) {
        for (std::uint32_t delta = 0; delta <= 8; ++delta) {
            const auto pattern = random_codes(rng, n);
            const std::size_t t = n + 2 * delta;
            const std::size_t count = 1 + rng.bounded(kLanes);
            std::vector<std::vector<std::uint8_t>> windows;
            for (std::size_t l = 0; l < count; ++l) {
                if (rng.chance(0.6)) {
                    auto win = mutated_copy(rng, pattern,
                                            rng.bounded(2 * delta + 2));
                    win.resize(t, 0);
                    for (std::size_t i = n; i < t && i < win.size(); ++i) {
                        win[i] = static_cast<std::uint8_t>(rng.bounded(4));
                    }
                    windows.push_back(std::move(win));
                } else {
                    windows.push_back(random_codes(rng, t));
                }
            }
            expect_lanes_match_scalar(pattern, windows, delta, "sweep");
        }
    }
}

TEST(MyersSimdDifferential, BoundaryClampGeometriesMatchScalar) {
    // The kernel clamps candidate windows at both reference ends:
    // position 0 loses the left δ margin, ref_len - n loses the right
    // margin, and a candidate near the very end can leave a window
    // shorter than the pattern itself (kept while win_len + δ ≥ n).
    // Each clamp changes the band schedule, so each gets its own
    // differential pass — including the degenerate t = 1 column.
    Xoshiro256 rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 12 + rng.bounded(289);
        const std::uint32_t delta =
            static_cast<std::uint32_t>(rng.bounded(9));
        const auto pattern = random_codes(rng, n);
        const std::size_t t_full = n + 2 * delta;
        const std::size_t clamps[] = {
            n + delta,                    // pos-0 clamp: left margin gone
            n + delta - rng.bounded(delta + 1), // right-end clamp
            n >= delta ? n - delta : 1,   // window shorter than pattern
            1,                            // single-column window
            t_full,                       // unclamped control
        };
        for (const std::size_t t : clamps) {
            if (t == 0) continue;
            const std::size_t count = 1 + rng.bounded(kLanes);
            std::vector<std::vector<std::uint8_t>> windows;
            for (std::size_t l = 0; l < count; ++l) {
                auto win = mutated_copy(rng, pattern,
                                        rng.bounded(delta + 2));
                win.resize(t, static_cast<std::uint8_t>(rng.bounded(4)));
                windows.push_back(std::move(win));
            }
            expect_lanes_match_scalar(pattern, windows, delta, "clamp");
        }
    }
}

TEST(MyersSimdDifferential, DegenerateSequencesMatchScalar) {
    // All-same-base patterns/windows maximize indel ambiguity in the DP
    // (every column scores alike), and N-containing sequences exercise
    // the parser's deterministic stand-in codes. Both stress the
    // boundary-score bookkeeping rather than the common random case.
    Xoshiro256 rng(99);
    for (std::uint32_t delta = 0; delta <= 8; delta += 2) {
        // Homopolymer pattern vs homopolymer and near-homopolymer
        // windows, same and different bases.
        for (std::uint8_t base = 0; base < 4; ++base) {
            const std::size_t n = 12 + rng.bounded(120);
            const std::vector<std::uint8_t> pattern(n, base);
            const std::size_t t = n + 2 * delta;
            std::vector<std::vector<std::uint8_t>> windows;
            windows.emplace_back(t, base);                       // exact
            windows.emplace_back(t, static_cast<std::uint8_t>(
                                        (base + 1) & 3));        // disjoint
            auto noisy = std::vector<std::uint8_t>(t, base);
            for (std::uint32_t e = 0; e <= delta; ++e) {
                noisy[rng.bounded(t)] =
                    static_cast<std::uint8_t>(rng.bounded(4));
            }
            windows.push_back(std::move(noisy));
            expect_lanes_match_scalar(pattern, windows, delta,
                                      "homopolymer");
        }
        // N-containing FASTA text mapped through Reference::from_ascii
        // (Ns become deterministic stand-in bases at parse, so the
        // engine always sees codes 0..3 — the contract this test
        // documents).
        const std::string ascii =
            "ACGTNNNNACGTACGTNNACGTACGTACGTNNNNNNACGTACGTACGTACGT"
            "NNACGTACGTNNNNACGTACGTACGTACGTNNACGTACGTACGTACGTACGT";
        const auto ref = genomics::Reference::from_ascii(
            "n-test", ascii, /*n_seed=*/delta + 1);
        std::vector<std::uint8_t> codes(ref.size());
        ref.sequence().extract(0, ref.size(), codes.data());
        const std::size_t n = 40;
        const std::vector<std::uint8_t> pattern(codes.begin(),
                                                codes.begin() + n);
        const std::size_t t = n + 2 * delta;
        std::vector<std::vector<std::uint8_t>> windows;
        for (std::size_t start = 0; start + t <= codes.size() &&
                                    windows.size() < kLanes;
             start += 7) {
            windows.emplace_back(codes.begin() + start,
                                 codes.begin() + start + t);
        }
        expect_lanes_match_scalar(pattern, windows, delta, "n-bases");
    }
}

TEST(MyersSimdDifferential, MixedBucketDispatchMatchesScalar) {
    // The kernel's full dispatch shape: jobs of several distinct
    // clamped lengths, bucketed, full batches through the engine,
    // partial-bucket tails through the scalar matcher — then every
    // result compared against a direct scalar scan in original job
    // order. This is the unit-level mirror of map_strand's batched
    // path, including the tail fallback.
    Xoshiro256 rng(777);
    const std::size_t n = 100;
    const std::uint32_t delta = 5;
    const auto pattern = random_codes(rng, n);
    MyersSimdEngine engine(pattern);
    MyersMatcher matcher(pattern);

    // 37 jobs over 3 clamped lengths: guarantees full batches AND
    // non-empty tails in several buckets.
    const std::size_t job_lengths_raw[] = {110, 105, 110, 97, 110, 105};
    std::vector<std::vector<std::uint8_t>> job_windows;
    std::vector<std::uint32_t> lengths;
    for (int i = 0; i < 37; ++i) {
        const std::size_t t = job_lengths_raw[rng.bounded(6)];
        auto win = mutated_copy(rng, pattern, rng.bounded(8));
        win.resize(t, static_cast<std::uint8_t>(rng.bounded(4)));
        lengths.push_back(static_cast<std::uint32_t>(t));
        job_windows.push_back(std::move(win));
    }

    std::vector<std::uint32_t> order;
    std::vector<LengthBucket> buckets;
    align::bucket_by_length(lengths, order, buckets);

    std::vector<MyersMatcher::BoundedHit> results(job_windows.size());
    const std::uint8_t* texts[kLanes];
    MyersMatcher::BoundedHit hits[kLanes];
    std::size_t batched = 0, tail = 0;
    for (const LengthBucket& bucket : buckets) {
        std::uint32_t i = 0;
        while (bucket.count - i >= kLanes) {
            for (std::size_t k = 0; k < kLanes; ++k) {
                texts[k] =
                    job_windows[order[bucket.first + i + k]].data();
            }
            engine.best_in_bounded_multi(texts, kLanes, bucket.length,
                                         delta, hits);
            for (std::size_t k = 0; k < kLanes; ++k) {
                results[order[bucket.first + i + k]] = hits[k];
            }
            i += kLanes;
            batched += kLanes;
        }
        for (; i < bucket.count; ++i) {
            const auto& win = job_windows[order[bucket.first + i]];
            results[order[bucket.first + i]] =
                matcher.best_in_bounded(win, delta);
            ++tail;
        }
    }
    EXPECT_GT(batched, 0u) << "fixture never filled a batch";
    EXPECT_GT(tail, 0u) << "fixture never produced a tail";

    for (std::size_t i = 0; i < job_windows.size(); ++i) {
        const auto scalar = matcher.best_in_bounded(job_windows[i], delta);
        ASSERT_EQ(results[i].distance, scalar.distance) << "job " << i;
        ASSERT_EQ(results[i].text_end, scalar.text_end) << "job " << i;
        ASSERT_EQ(results[i].early_exit, scalar.early_exit) << "job " << i;
    }
}

TEST(MyersSimdEngineApi, BackendAndAccounting) {
    const std::string backend = align::myers_simd_backend();
    EXPECT_TRUE(backend == "avx512" || backend == "avx2" ||
                backend == "sse4.2" || backend == "portable")
        << backend;
    Xoshiro256 rng(5);
    const auto pattern = random_codes(rng, 100);
    MyersSimdEngine engine(pattern);
    EXPECT_EQ(engine.pattern_length(), 100u);
    EXPECT_EQ(engine.word_count(), 2u);
    const auto win = random_codes(rng, 110);
    const std::uint8_t* texts[1] = {win.data()};
    MyersMatcher::BoundedHit out[1];
    engine.best_in_bounded_multi(texts, 1, win.size(), 5, out);
    EXPECT_GT(engine.last_word_ops(), 0u);
    EXPECT_THROW(MyersSimdEngine{std::span<const std::uint8_t>{}},
                 std::invalid_argument);
}

// ------------------------------------------- bucketing permutation

TEST(LaneBucketing, IsAStablePermutation) {
    // Property: bucket_by_length emits every index exactly once,
    // groups are contiguous and length-homogeneous, bucket order is
    // first appearance, and the original order is preserved within
    // each bucket (stability — the kernel's decision replay depends on
    // per-bucket FIFO order matching candidate order).
    Xoshiro256 rng(31337);
    std::vector<std::uint32_t> order;
    std::vector<LengthBucket> buckets;
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = rng.bounded(200);
        std::vector<std::uint32_t> lengths(n);
        for (auto& len : lengths) {
            len = 90 + static_cast<std::uint32_t>(rng.bounded(12));
        }
        align::bucket_by_length(lengths, order, buckets);

        ASSERT_EQ(order.size(), n);
        std::vector<bool> seen(n, false);
        for (const std::uint32_t idx : order) {
            ASSERT_LT(idx, n);
            ASSERT_FALSE(seen[idx]) << "index emitted twice";
            seen[idx] = true;
        }

        std::size_t covered = 0;
        std::vector<std::uint32_t> first_seen;
        for (const LengthBucket& b : buckets) {
            ASSERT_EQ(b.first, covered) << "buckets not contiguous";
            ASSERT_GT(b.count, 0u);
            covered += b.count;
            first_seen.push_back(b.length);
            std::uint32_t prev = 0;
            bool have_prev = false;
            for (std::uint32_t k = 0; k < b.count; ++k) {
                const std::uint32_t idx = order[b.first + k];
                ASSERT_EQ(lengths[idx], b.length)
                    << "bucket not length-homogeneous";
                if (have_prev) {
                    ASSERT_LT(prev, idx) << "within-bucket order broken";
                }
                prev = idx;
                have_prev = true;
            }
        }
        ASSERT_EQ(covered, n) << "buckets do not partition the jobs";
        // Bucket order = first appearance of each distinct length.
        std::vector<std::uint32_t> expected;
        for (const std::uint32_t len : lengths) {
            bool known = false;
            for (const std::uint32_t e : expected) {
                if (e == len) {
                    known = true;
                    break;
                }
            }
            if (!known) expected.push_back(len);
        }
        ASSERT_EQ(first_seen, expected);
    }
}

TEST(LaneBucketing, GatherCandidatesWindowsSurviveBucketingIntact) {
    // The kernel-shaped property: windows coming out of
    // gather_candidates (diagonal collapse + coalesced groups + end
    // clamps) feed the bucketer, and every verification-eligible
    // window must appear exactly once across buckets — none dropped,
    // none duplicated, even when coalescing merges overlapping windows
    // into shared-fetch groups first.
    genomics::GenomeSimConfig gconfig;
    gconfig.length = 60'000;
    gconfig.seed = 17;
    const auto reference = genomics::simulate_genome(gconfig);
    const index::FmIndex fm(reference, 4);
    genomics::ReadSimConfig rconfig;
    rconfig.n_reads = 60;
    rconfig.read_length = 100;
    rconfig.max_errors = 5;
    const auto sim = genomics::simulate_reads(reference, rconfig);

    const filter::MemoryOptimizedSeeder seeder{12};
    const std::uint32_t delta = 5;
    filter::SeedPlan plan;
    filter::SeedScratch seed_scratch;
    filter::CandidateSet candidates;
    std::vector<std::uint32_t> hits;
    std::vector<std::uint32_t> lengths, order;
    std::vector<LengthBucket> buckets;
    const auto text_len = static_cast<std::uint32_t>(fm.size());

    std::size_t total_windows = 0;
    std::vector<std::uint8_t> rc;
    for (const auto& read : sim.batch.reads) {
      read.reverse_complement(rc);
      const std::vector<std::uint8_t>* orientations[2] = {&read.codes, &rc};
      for (const std::vector<std::uint8_t>* codes : orientations) {
        const auto n = static_cast<std::uint32_t>(codes->size());
        seeder.select(fm, *codes, delta, plan, seed_scratch);
        filter::CandidateConfig cand_config;
        cand_config.coalesce_windows = true;
        filter::gather_candidates(fm, plan, n, delta, cand_config,
                                  candidates, hits);

        // The kernel's eligibility clamps, applied per group member.
        lengths.clear();
        for (const auto& group : candidates.groups) {
            for (std::uint32_t ci = 0; ci < group.count; ++ci) {
                const std::uint32_t start =
                    candidates.positions[group.first + ci];
                const std::uint32_t win_lo =
                    start >= delta ? start - delta : 0;
                if (win_lo >= text_len) continue;
                const std::uint32_t win_len = std::min<std::uint32_t>(
                    n + 2 * delta, text_len - win_lo);
                if (win_len + delta < n) continue;
                lengths.push_back(win_len);
            }
        }
        align::bucket_by_length(lengths, order, buckets);

        ASSERT_EQ(order.size(), lengths.size()) << "read " << read.id;
        std::size_t covered = 0;
        for (const LengthBucket& b : buckets) covered += b.count;
        ASSERT_EQ(covered, lengths.size()) << "read " << read.id;
        std::vector<bool> seen(lengths.size(), false);
        for (const std::uint32_t idx : order) {
            ASSERT_LT(idx, lengths.size());
            ASSERT_FALSE(seen[idx]);
            seen[idx] = true;
        }
        total_windows += lengths.size();
      }
    }
    EXPECT_GT(total_windows, 50u) << "fixture produced too few windows";
}

// ------------------------------------------- full-mapper equivalence

ocl::DeviceProfile test_profile() {
    ocl::DeviceProfile p;
    p.name = "simd-test-cpu";
    p.compute_units = 4;
    p.ops_per_unit_per_second = 1e9;
    p.global_memory_bytes = 1ULL << 31;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 1e-4;
    return p;
}

TEST(SimdKernelEquivalence, SamByteIdenticalAcrossSimdAndFunnelMatrix) {
    // The acceptance criterion end to end: the full mapper's SAM
    // output must be byte-identical with simd_verification on and off,
    // on top of every funnel-layer combination (the batched path
    // re-orders verification work, so this pins the decision-replay
    // ordering, cap semantics, and distances all at once).
    genomics::GenomeSimConfig gconfig;
    gconfig.length = 80'000;
    gconfig.seed = 33;
    const auto reference = genomics::simulate_genome(gconfig);
    const genomics::MultiReference multi(
        {{reference.name(), reference.sequence().to_string()}});
    const index::FmIndex fm(multi.concatenated(), 4);
    genomics::ReadSimConfig rconfig;
    rconfig.n_reads = 120;
    rconfig.read_length = 100;
    rconfig.max_errors = 5;
    rconfig.seed = 11;
    const auto sim = genomics::simulate_reads(multi.concatenated(),
                                              rconfig);
    const std::uint32_t delta = 5;

    const auto sam_for = [&](const core::KernelConfig& kernel) {
        ocl::Device device(test_profile());
        core::HeterogeneousMapperConfig config;
        config.kernel = kernel;
        const auto mapper = core::make_repute(multi.concatenated(), fm,
                                              {{&device, 1.0}}, config);
        std::ostringstream sam;
        pipeline::SamEmitter emitter(sam, multi, {true, delta});
        emitter.write_header();
        emitter.emit(sim.batch, mapper->map(sim.batch, delta));
        return sam.str();
    };

    // Funnel matrix (prefilter × banded × coalesce), each with simd on
    // vs off. With banded_verification off the simd toggle is inert by
    // contract — included to prove exactly that.
    std::optional<std::string> reference_sam;
    for (int mask = 0; mask < 8; ++mask) {
        core::KernelConfig on;
        on.prefilter = (mask & 1) != 0;
        on.banded_verification = (mask & 2) != 0;
        on.coalesce_windows = (mask & 4) != 0;
        on.simd_verification = true;
        core::KernelConfig off = on;
        off.simd_verification = false;

        const std::string sam_on = sam_for(on);
        const std::string sam_off = sam_for(off);
        ASSERT_EQ(sam_on, sam_off)
            << "SIMD on/off diverged at funnel mask " << mask;
        if (!reference_sam) {
            reference_sam = sam_on;
        } else {
            ASSERT_EQ(sam_on, *reference_sam)
                << "funnel mask " << mask
                << " changed output (layers must be output-neutral)";
        }
    }
}

} // namespace
