// Observability: the metrics registry, the trace recorder, the stage
// sub-span splitter, the Chrome-trace exporter — and the contract that
// spans live on the modeled device clock, so a traced mapping run is
// byte-for-byte reproducible and its span totals agree with
// MapResult::mapping_seconds.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/repute_mapper.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ocl/device.hpp"

namespace {

using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::SimulatedReads;
using repute::index::FmIndex;
using repute::obs::MetricsRegistry;
using repute::obs::StageCounters;
using repute::obs::TraceRecorder;
using repute::obs::TraceSession;
using repute::obs::TraceSpan;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;

// ------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramBasics) {
    MetricsRegistry registry;
    auto& c = registry.counter("test.counter");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // Same name -> same object.
    EXPECT_EQ(&registry.counter("test.counter"), &c);

    registry.gauge("test.gauge").set(2.5);
    EXPECT_DOUBLE_EQ(registry.gauge("test.gauge").value(), 2.5);

    auto& h = registry.histogram("test.hist");
    h.observe(1.0);
    h.observe(3.0);
    h.observe(2.0);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 3.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 2.0);

    const auto text = registry.format();
    EXPECT_NE(text.find("test.counter"), std::string::npos) << text;
    EXPECT_NE(text.find("test.gauge"), std::string::npos);
    EXPECT_NE(text.find("test.hist"), std::string::npos);
}

TEST(Metrics, EmptyHistogramSnapshotIsZero) {
    repute::obs::Histogram h;
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

// ------------------------------------------------- session installation

TEST(TraceSessionTest, NothingInstalledByDefault) {
    EXPECT_EQ(repute::obs::trace(), nullptr);
    EXPECT_EQ(repute::obs::metrics(), nullptr);
}

TEST(TraceSessionTest, InstallsForScopeAndUninstalls) {
    {
        TraceSession session;
        EXPECT_EQ(repute::obs::trace(), &session.recorder());
        EXPECT_EQ(repute::obs::metrics(), &session.registry());
    }
    EXPECT_EQ(repute::obs::trace(), nullptr);
    EXPECT_EQ(repute::obs::metrics(), nullptr);
}

TEST(TraceSessionTest, NestedSessionThrows) {
    TraceSession outer;
    EXPECT_THROW(TraceSession inner, std::logic_error);
    // The failed nesting must not have clobbered the outer install.
    EXPECT_EQ(repute::obs::trace(), &outer.recorder());
}

// ---------------------------------------------------- stage sub-spans

TEST(StageSpans, SplitProportionalToOpsAndContiguous) {
    TraceRecorder recorder;
    StageCounters counters;
    counters.filtration_ops = 100;
    counters.locate_ops = 300;
    counters.verify_ops = 600;
    // Launch [2.0, 2.0 + 0.1 overhead + 1.0 compute].
    repute::obs::record_stage_spans(recorder, "devA", 0, 2.0, 0.1, 1.1,
                                    counters);
    const auto spans = recorder.spans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].stage, "filtration");
    EXPECT_EQ(spans[1].stage, "locate");
    EXPECT_EQ(spans[2].stage, "verify");
    EXPECT_NEAR(spans[0].duration_seconds, 0.1, 1e-12);
    EXPECT_NEAR(spans[1].duration_seconds, 0.3, 1e-12);
    EXPECT_NEAR(spans[2].duration_seconds, 0.6, 1e-12);
    // Contiguous, starting past the dispatch overhead.
    EXPECT_NEAR(spans[0].start_seconds, 2.1, 1e-12);
    for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_NEAR(spans[i].start_seconds,
                    spans[i - 1].start_seconds +
                        spans[i - 1].duration_seconds,
                    1e-12);
    }
    // Stage totals were accumulated.
    const auto totals = recorder.stage_totals();
    ASSERT_EQ(totals.count("devA"), 1u);
    EXPECT_EQ(totals.at("devA").locate_ops, 300u);
}

TEST(StageSpans, ZeroOpStagesSkipped) {
    TraceRecorder recorder;
    StageCounters counters;
    counters.verify_ops = 10;
    repute::obs::record_stage_spans(recorder, "devA", 0, 0.0, 0.0, 1.0,
                                    counters);
    const auto spans = recorder.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].stage, "verify");
    EXPECT_NEAR(spans[0].duration_seconds, 1.0, 1e-12);
}

// ------------------------------------------------- end-to-end tracing

class ObsMappingTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 80'000;
        gconfig.seed = 77;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);
        ReadSimConfig rconfig;
        rconfig.n_reads = 120;
        rconfig.read_length = 100;
        rconfig.max_errors = 4;
        sim_ = new SimulatedReads(simulate_reads(*reference_, rconfig));
    }
    static void TearDownTestSuite() {
        delete sim_;
        delete fm_;
        delete reference_;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    static DeviceProfile profile(const char* name) {
        DeviceProfile p;
        p.name = name;
        p.compute_units = 8;
        p.ops_per_unit_per_second = 1e9;
        p.global_memory_bytes = 1ULL << 30;
        p.private_memory_per_unit = 1 << 20;
        p.dispatch_overhead_seconds = 1e-4;
        return p;
    }

    /// One full static two-device mapping run under a fresh session;
    /// returns the Chrome JSON and, optionally, the mapped seconds and
    /// busy totals via out-params.
    static std::string traced_run(double* mapping_seconds = nullptr,
                                  std::string* summary = nullptr) {
        Device a(profile("obs-a"));
        Device b(profile("obs-b"));
        TraceSession session;
        auto mapper = repute::core::make_repute(*reference_, *fm_,
                                                {{&a, 0.6}, {&b, 0.4}});
        const auto result = mapper->map(sim_->batch, 4);
        if (mapping_seconds != nullptr) {
            *mapping_seconds = result.mapping_seconds;
        }

        // Per-device launch-span totals equal the modeled device time;
        // the fleet maximum is the reported mapping time.
        const auto busy = session.recorder().device_busy_seconds();
        EXPECT_EQ(busy.size(), 2u);
        double max_busy = 0.0;
        for (const auto& [device, seconds] : busy) {
            max_busy = std::max(max_busy, seconds);
        }
        EXPECT_NEAR(max_busy, result.mapping_seconds,
                    1e-9 * result.mapping_seconds);

        // Stage totals in the recorder match the per-run breakdown.
        const auto totals = session.recorder().stage_totals();
        for (const auto& run : result.device_runs) {
            const auto it = totals.find(run.device_name);
            EXPECT_NE(it, totals.end()) << run.device_name;
            if (it != totals.end()) {
                EXPECT_EQ(it->second.total_ops(), run.stage.total_ops());
            }
        }

        if (summary != nullptr) {
            *summary = repute::obs::stage_summary(session.recorder(),
                                                  &session.registry());
        }
        return repute::obs::chrome_trace_json(session.recorder());
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedReads* sim_;
};

Reference* ObsMappingTest::reference_ = nullptr;
FmIndex* ObsMappingTest::fm_ = nullptr;
SimulatedReads* ObsMappingTest::sim_ = nullptr;

/// Minimal structural JSON check: balanced braces/brackets outside
/// strings, no trailing comma before a closer. Not a full parser — just
/// enough to catch exporter formatting bugs.
void expect_well_formed_json(const std::string& json) {
    std::vector<char> stack;
    bool in_string = false;
    char prev_significant = '\0';
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\') {
                ++i; // skip the escaped char
            } else if (c == '"') {
                in_string = false;
                prev_significant = '"';
            }
            continue;
        }
        switch (c) {
        case '"': in_string = true; break;
        case '{': stack.push_back('}'); break;
        case '[': stack.push_back(']'); break;
        case '}':
        case ']':
            ASSERT_FALSE(stack.empty()) << "unbalanced at byte " << i;
            ASSERT_EQ(stack.back(), c) << "mismatched at byte " << i;
            ASSERT_NE(prev_significant, ',') << "trailing comma at " << i;
            stack.pop_back();
            break;
        default: break;
        }
        if (c != ' ' && c != '\n' && c != '\t' && c != '\r') {
            prev_significant = c;
        }
    }
    EXPECT_FALSE(in_string) << "unterminated string";
    EXPECT_TRUE(stack.empty()) << "unbalanced JSON";
}

TEST_F(ObsMappingTest, ChromeTraceStructureAndContent) {
    std::string summary;
    const auto json = traced_run(nullptr, &summary);
    expect_well_formed_json(json);
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
    // Metadata names both device processes; complete spans and stage
    // args are present.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("obs-a"), std::string::npos);
    EXPECT_NE(json.find("obs-b"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("filtration"), std::string::npos);
    EXPECT_NE(json.find("verify"), std::string::npos);

    // The text summary reports both devices and the stage columns.
    EXPECT_NE(summary.find("obs-a"), std::string::npos) << summary;
    EXPECT_NE(summary.find("filtration"), std::string::npos);
    EXPECT_NE(summary.find("kernel.candidates_per_read"),
              std::string::npos);
}

TEST_F(ObsMappingTest, TraceIsByteDeterministicAcrossRuns) {
    // Fresh devices + fresh session each time: identical runs must
    // export byte-identical traces (static schedule; the modeled clock
    // has no host-time dependence).
    double t1 = 0.0, t2 = 0.0;
    const auto a = traced_run(&t1);
    const auto b = traced_run(&t2);
    EXPECT_DOUBLE_EQ(t1, t2);
    EXPECT_EQ(a, b);
}

TEST_F(ObsMappingTest, UntracedRunRecordsNothingAndMatchesTraced) {
    // No session: instrumentation must stay silent and the mapping
    // output must match a traced run exactly.
    Device plain(profile("obs-a"));
    auto mapper =
        repute::core::make_repute(*reference_, *fm_, {{&plain, 1.0}});
    ASSERT_EQ(repute::obs::trace(), nullptr);
    const auto untraced = mapper->map(sim_->batch, 4);

    Device traced_dev(profile("obs-a"));
    TraceSession session;
    auto traced_mapper = repute::core::make_repute(*reference_, *fm_,
                                                   {{&traced_dev, 1.0}});
    const auto traced = traced_mapper->map(sim_->batch, 4);
    EXPECT_FALSE(session.recorder().spans().empty());

    ASSERT_EQ(untraced.per_read.size(), traced.per_read.size());
    for (std::size_t i = 0; i < untraced.per_read.size(); ++i) {
        EXPECT_EQ(untraced.per_read[i], traced.per_read[i]);
    }
    EXPECT_DOUBLE_EQ(untraced.mapping_seconds, traced.mapping_seconds);
}

TEST_F(ObsMappingTest, StaticRunLeavesScheduleEmpty) {
    Device dev(profile("obs-a"));
    auto mapper =
        repute::core::make_repute(*reference_, *fm_, {{&dev, 1.0}});
    const auto result = mapper->map(sim_->batch, 4);
    EXPECT_FALSE(result.used_dynamic_schedule());
    EXPECT_FALSE(result.schedule.has_value());
}

TEST_F(ObsMappingTest, DynamicRunRecordsSchedulerEvents) {
    Device a(profile("obs-a"));
    Device b(profile("obs-b"));
    TraceSession session;
    repute::core::HeterogeneousMapperConfig config;
    config.schedule = repute::core::ScheduleMode::Dynamic;
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{&a, 0.5}, {&b, 0.5}},
                                            config);
    const auto result = mapper->map(sim_->batch, 4);
    ASSERT_TRUE(result.used_dynamic_schedule());

    // Chunk spans on the scheduler track, one per executed chunk.
    std::size_t chunk_spans = 0;
    for (const auto& span : session.recorder().spans()) {
        if (span.track == repute::obs::kSchedulerTrack &&
            span.chunk >= 0) {
            ++chunk_spans;
        }
    }
    EXPECT_EQ(chunk_spans, result.schedule->chunks);
    EXPECT_EQ(session.registry().counter("scheduler.chunks").value(),
              result.schedule->chunks);
}

} // namespace
