// The mapping daemon end to end over a real Unix-domain socket:
// concurrent clients against one resident session, single-end and
// paired requests interleaved, per-client output byte-identical to the
// same request mapped one-shot, and a clean drain on stop().

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/pair_sim.hpp"
#include "genomics/read_sim.hpp"
#include "pipeline/mapping_api.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace repute {
namespace {

std::string fastq_text(const genomics::ReadBatch& batch) {
    std::string out;
    for (const auto& read : batch.reads) {
        out += '@' + read.name + '\n' + read.to_string() + "\n+\n";
        out += read.quality.empty() ? std::string(read.length(), 'I')
                                    : read.quality;
        out += '\n';
    }
    return out;
}

/// One shared daemon fixture: a small genome, a 2-mapper session, a
/// server on a TempDir socket, and ground-truth SAM for each request
/// shape produced through the same session one-shot.
class ServeTest : public ::testing::Test {
protected:
    void SetUp() override {
        genomics::GenomeSimConfig gconfig;
        gconfig.length = 30'000;
        gconfig.seed = 17;
        genomics::Reference genome = genomics::simulate_genome(gconfig);

        genomics::ReadSimConfig rconfig;
        rconfig.n_reads = 200;
        rconfig.read_length = 60;
        rconfig.max_errors = 3;
        rconfig.seed = 500;
        single_fastq_ = fastq_text(
            genomics::simulate_reads(genome, rconfig).batch);

        genomics::PairSimConfig pconfig;
        pconfig.n_pairs = 80;
        pconfig.read_length = 60;
        pconfig.max_errors = 2;
        pconfig.insert_mean = 240.0;
        pconfig.insert_stddev = 20.0;
        pconfig.seed = 900;
        const auto pairs = genomics::simulate_pairs(genome, pconfig);
        paired_fastq1_ = fastq_text(pairs.first);
        paired_fastq2_ = fastq_text(pairs.second);

        pipeline::SessionConfig sconfig;
        sconfig.mapper_pool = 2;
        session_ = pipeline::MappingSession::from_multi(
            genomics::MultiReference(std::move(genome)), sconfig);

        serve::ServerConfig server_config;
        server_config.socket_path =
            testing::TempDir() + "repute_test_serve.sock";
        server_config.handlers = 2;
        server_ = std::make_unique<serve::Server>(*session_,
                                                  server_config);
        server_thread_ = std::thread([this] { served_ = server_->run(); });
    }

    void TearDown() override {
        if (server_thread_.joinable()) {
            server_->stop();
            server_thread_.join();
        }
    }

    serve::WireRequest single_request(const std::string& tenant) const {
        serve::WireRequest request;
        request.delta = 3;
        request.tenant = tenant;
        request.reads = single_fastq_;
        return request;
    }

    serve::WireRequest paired_request(const std::string& tenant) const {
        serve::WireRequest request = single_request(tenant);
        request.reads = paired_fastq1_;
        request.reads2 = paired_fastq2_;
        request.read_length = 60;
        request.min_insert = 120;
        request.max_insert = 400;
        return request;
    }

    /// The same request mapped one-shot through the session (the wire
    /// decode path is exercised by running it through the server once).
    std::string one_shot(const serve::WireRequest& wire) {
        std::istringstream reads(wire.reads);
        std::istringstream reads2(wire.reads2);
        pipeline::MapRequest request;
        request.reads = &reads;
        request.delta = wire.delta;
        if (!wire.reads2.empty()) {
            request.reads2 = &reads2;
            request.reader.read_length = wire.read_length;
            request.pair.min_insert = wire.min_insert;
            request.pair.max_insert = wire.max_insert;
        }
        std::ostringstream sam;
        session_->map(request, sam);
        return sam.str();
    }

    std::string via_socket(const serve::WireRequest& wire) {
        std::ostringstream sam;
        serve::run_client(server_->socket_path(), wire, sam);
        return sam.str();
    }

    std::unique_ptr<pipeline::MappingSession> session_;
    std::unique_ptr<serve::Server> server_;
    std::thread server_thread_;
    std::size_t served_ = 0;
    std::string single_fastq_, paired_fastq1_, paired_fastq2_;
};

TEST_F(ServeTest, SingleRequestMatchesOneShot) {
    const auto wire = single_request("solo");
    EXPECT_EQ(via_socket(wire), one_shot(wire));
}

TEST_F(ServeTest, ConcurrentClientsEachGetIdenticalOutput) {
    const auto single = single_request("fleet");
    const auto paired = paired_request("fleet");
    const std::string want_single = one_shot(single);
    const std::string want_paired = one_shot(paired);

    // More clients than handlers: the admission queue has to hold the
    // overflow, and interleaved single/paired requests must not bleed
    // into each other's streams.
    constexpr std::size_t kClients = 6;
    std::vector<std::string> got(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            got[i] = via_socket(i % 2 == 0 ? single : paired);
        });
    }
    for (auto& t : clients) t.join();

    for (std::size_t i = 0; i < kClients; ++i) {
        EXPECT_EQ(got[i], i % 2 == 0 ? want_single : want_paired)
            << "client " << i << " diverged";
    }
}

TEST_F(ServeTest, DoneFrameCarriesSummary) {
    std::ostringstream sam;
    const auto result = serve::run_client(server_->socket_path(),
                                          single_request("sum"), sam);
    EXPECT_NE(result.summary.find("reads_in="), std::string::npos);
    EXPECT_NE(result.summary.find("records="), std::string::npos);
}

TEST_F(ServeTest, MalformedRequestGetsErrorFrameAndServerSurvives) {
    serve::WireRequest bad = single_request("bad");
    bad.reads = "@only_name_no_sequence\n";
    bad.fail_on_malformed = 1;
    std::ostringstream sam;
    EXPECT_THROW(serve::run_client(server_->socket_path(), bad, sam),
                 std::runtime_error);

    // The handler must still be alive for the next request.
    const auto wire = single_request("after");
    EXPECT_EQ(via_socket(wire), one_shot(wire));
}

TEST_F(ServeTest, StopDrainsAndReportsServedCount) {
    const auto wire = single_request("drain");
    via_socket(wire);
    via_socket(wire);
    server_->stop();
    server_thread_.join();
    EXPECT_EQ(served_, 2u);
}

} // namespace
} // namespace repute
