// Bidirectional FM-Index: range synchronization invariants, left/right
// extension order independence, and the search-scheme's equivalence to
// unidirectional backtracking search at lower node counts.

#include <gtest/gtest.h>

#include <set>

#include "genomics/genome_sim.hpp"
#include "index/approx_search.hpp"
#include "index/bi_fm_index.hpp"
#include "util/prng.hpp"

namespace {

using repute::genomics::GenomeSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::index::ApproxSearchStats;
using repute::index::approximate_search;
using repute::index::BiFmIndex;
using repute::index::bidirectional_approximate_search;
using repute::util::Xoshiro256;

class BiFmIndexTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig config;
        config.length = 60'000;
        config.seed = 31;
        reference_ = new Reference(simulate_genome(config));
        index_ = new BiFmIndex(*reference_);
    }
    static void TearDownTestSuite() {
        delete index_;
        delete reference_;
        index_ = nullptr;
        reference_ = nullptr;
    }

    static std::set<std::uint32_t> locate_hits(
        const std::vector<repute::index::ApproxHit>& hits) {
        std::set<std::uint32_t> out;
        std::vector<std::uint32_t> positions;
        for (const auto& hit : hits) {
            positions.clear();
            index_->forward().locate_range(hit.range, hit.range.count(),
                                           positions);
            out.insert(positions.begin(), positions.end());
        }
        return out;
    }

    static Reference* reference_;
    static BiFmIndex* index_;
};

Reference* BiFmIndexTest::reference_ = nullptr;
BiFmIndex* BiFmIndexTest::index_ = nullptr;

TEST_F(BiFmIndexTest, MatchAgreesWithForwardSearch) {
    Xoshiro256 rng(1);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t len = 1 + rng.bounded(30);
        const std::size_t pos = rng.bounded(reference_->size() - len);
        const auto pattern = reference_->sequence().extract(pos, len);
        const auto bi = index_->match(pattern);
        const auto fwd = index_->forward().search(pattern);
        EXPECT_EQ(bi.fwd, fwd);
        EXPECT_EQ(bi.count(), fwd.count());
        EXPECT_EQ(bi.rev.count(), fwd.count()); // synchronized
    }
}

TEST_F(BiFmIndexTest, ReverseRangeTracksReversedPattern) {
    Xoshiro256 rng(2);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t len = 2 + rng.bounded(20);
        const std::size_t pos = rng.bounded(reference_->size() - len);
        const auto pattern = reference_->sequence().extract(pos, len);
        const auto bi = index_->match(pattern);

        std::vector<std::uint8_t> reversed(pattern.rbegin(),
                                           pattern.rend());
        EXPECT_EQ(bi.rev, index_->reverse().search(reversed));
    }
}

TEST_F(BiFmIndexTest, ExtensionOrderIrrelevant) {
    Xoshiro256 rng(3);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t len = 6 + rng.bounded(14);
        const std::size_t pos = rng.bounded(reference_->size() - len);
        const auto pattern = reference_->sequence().extract(pos, len);

        // Grow from a random internal split: right then left.
        const std::size_t split = 1 + rng.bounded(len - 1);
        auto range = index_->whole_range();
        for (std::size_t i = split; i < len; ++i) {
            range = index_->extend_right(range, pattern[i]);
        }
        for (std::size_t i = split; i-- > 0;) {
            range = index_->extend_left(range, pattern[i]);
        }
        EXPECT_EQ(range.fwd, index_->forward().search(pattern))
            << "split " << split;
    }
}

TEST_F(BiFmIndexTest, InterleavedExtensionsStaySynchronized) {
    Xoshiro256 rng(4);
    const auto pattern = reference_->sequence().extract(1000, 16);
    // Build the same pattern inside-out with random direction choices.
    std::size_t left = 8, right = 8;
    auto range = index_->whole_range();
    while (left > 0 || right < 16) {
        const bool go_left =
            right == 16 || (left > 0 && rng.chance(0.5));
        if (go_left) {
            --left;
            range = index_->extend_left(range, pattern[left]);
        } else {
            range = index_->extend_right(range, pattern[right]);
            ++right;
        }
        ASSERT_EQ(range.fwd.count(), range.rev.count());
    }
    EXPECT_EQ(range.fwd, index_->forward().search(pattern));
}

TEST_F(BiFmIndexTest, SchemeMatchesBacktrackingSearch) {
    Xoshiro256 rng(5);
    for (const std::uint32_t e : {0u, 1u, 2u, 3u}) {
        for (int trial = 0; trial < 6; ++trial) {
            const std::size_t len = 16 + rng.bounded(10);
            const std::size_t pos =
                rng.bounded(reference_->size() - len);
            auto pattern = reference_->sequence().extract(pos, len);
            for (std::uint32_t m = 0; m < e; ++m) {
                const std::size_t at = rng.bounded(len);
                pattern[at] =
                    static_cast<std::uint8_t>((pattern[at] + 1) & 3);
            }
            const auto uni = approximate_search(
                index_->forward(), pattern, e);
            const auto bidi = bidirectional_approximate_search(
                *index_, pattern, e);
            EXPECT_EQ(locate_hits(bidi), locate_hits(uni))
                << "e=" << e << " trial=" << trial;
        }
    }
}

TEST_F(BiFmIndexTest, SchemeVisitsFewerNodesAtHighBudgets) {
    Xoshiro256 rng(6);
    std::uint64_t uni_nodes = 0, bidi_nodes = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t pos = rng.bounded(reference_->size() - 30);
        const auto pattern = reference_->sequence().extract(pos, 30);
        ApproxSearchStats u, b;
        (void)approximate_search(index_->forward(), pattern, 3, &u);
        (void)bidirectional_approximate_search(*index_, pattern, 3, &b);
        uni_nodes += u.visited_nodes;
        bidi_nodes += b.visited_nodes;
    }
    EXPECT_LT(bidi_nodes * 2, uni_nodes)
        << "scheme should at least halve the search tree at e=3";
}

TEST_F(BiFmIndexTest, NodeBudgetHonored) {
    const auto pattern = reference_->sequence().extract(500, 24);
    ApproxSearchStats stats;
    (void)bidirectional_approximate_search(*index_, pattern, 3, &stats,
                                           /*node_budget=*/40);
    EXPECT_TRUE(stats.budget_exhausted);
}

TEST_F(BiFmIndexTest, MemoryIsTwiceTheForwardIndex) {
    EXPECT_EQ(index_->memory_bytes(),
              2 * index_->forward().memory_bytes());
}

} // namespace
