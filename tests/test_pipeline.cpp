// Streaming batch pipeline: chunked FASTA/FASTQ parsing with per-record
// error policy, bounded/ordered pipeline execution, and the headline
// property — streaming SAM output is byte-identical to the monolithic
// parse-then-map-then-write path, even on a skewed device fleet that
// finishes batches out of order.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "core/paired.hpp"
#include "core/repute_mapper.hpp"
#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/pair_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "obs/trace.hpp"
#include "pipeline/batch_pipeline.hpp"
#include "pipeline/mapping_pipeline.hpp"
#include "pipeline/sam_emitter.hpp"
#include "pipeline/streaming_fastx.hpp"

namespace repute {
namespace {

using genomics::FastxRecordStream;
using Status = FastxRecordStream::Status;

std::string fastq_text(const genomics::ReadBatch& batch) {
    std::string out;
    for (const auto& read : batch.reads) {
        out += '@' + read.name + '\n' + read.to_string() + "\n+\n";
        out += read.quality.empty()
                   ? std::string(read.length(), 'I')
                   : read.quality;
        out += '\n';
    }
    return out;
}

// ---------------------------------------------------------------------
// FastxRecordStream

TEST(FastxRecordStream, ParsesFastqAndFastaWithAutoDetection) {
    {
        std::istringstream in("@r1 extra\nACGT\n+\nIIII\n@r2\nGGCC\n+\nJJJJ\n");
        FastxRecordStream stream(in);
        genomics::FastqRecord rec;
        ASSERT_EQ(stream.next(rec), Status::Record);
        EXPECT_EQ(stream.format(), genomics::FastxFormat::Fastq);
        EXPECT_EQ(rec.name, "r1");
        EXPECT_EQ(rec.sequence, "ACGT");
        EXPECT_EQ(rec.quality, "IIII");
        ASSERT_EQ(stream.next(rec), Status::Record);
        EXPECT_EQ(rec.name, "r2");
        EXPECT_EQ(stream.next(rec), Status::End);
    }
    {
        std::istringstream in(">s1\nACGT\nACGT\n;comment\n>s2\nTT\n");
        FastxRecordStream stream(in);
        genomics::FastqRecord rec;
        ASSERT_EQ(stream.next(rec), Status::Record);
        EXPECT_EQ(stream.format(), genomics::FastxFormat::Fasta);
        EXPECT_EQ(rec.name, "s1");
        EXPECT_EQ(rec.sequence, "ACGTACGT");
        EXPECT_TRUE(rec.quality.empty());
        ASSERT_EQ(stream.next(rec), Status::Record);
        EXPECT_EQ(rec.sequence, "TT");
        EXPECT_EQ(stream.next(rec), Status::End);
    }
}

TEST(FastxRecordStream, ReportsMalformedRecordsAndResyncs) {
    // Bad header, then a quality-length mismatch, then a good record.
    std::istringstream in(
        "garbage\n@bad\nACGT\n+\nII\n@good\nACGT\n+\nIIII\n");
    FastxRecordStream stream(in, genomics::FastxFormat::Fastq);
    genomics::FastqRecord rec;
    std::string error;
    ASSERT_EQ(stream.next(rec, &error), Status::Malformed);
    EXPECT_NE(error.find("expected '@'"), std::string::npos);
    ASSERT_EQ(stream.next(rec, &error), Status::Malformed);
    EXPECT_NE(error.find("length mismatch"), std::string::npos);
    ASSERT_EQ(stream.next(rec, &error), Status::Record);
    EXPECT_EQ(rec.name, "good");
    EXPECT_EQ(stream.next(rec), Status::End);
}

TEST(FastxRecordStream, TruncatedFinalRecordIsMalformedNotFatal) {
    std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nACGT\n");
    FastxRecordStream stream(in);
    genomics::FastqRecord rec;
    std::string error;
    ASSERT_EQ(stream.next(rec, &error), Status::Record);
    ASSERT_EQ(stream.next(rec, &error), Status::Malformed);
    EXPECT_NE(error.find("truncated"), std::string::npos);
    EXPECT_EQ(stream.next(rec), Status::End);
}

// ---------------------------------------------------------------------
// StreamingFastxReader

TEST(StreamingFastxReader, EmptyFileYieldsNoBatches) {
    std::istringstream in("");
    pipeline::StreamingFastxReader reader(in);
    genomics::ReadBatch batch;
    EXPECT_FALSE(reader.next_batch(batch));
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(reader.stats().records, 0u);
    EXPECT_EQ(reader.stats().batches, 0u);
}

TEST(StreamingFastxReader, BatchSizeLargerThanFile) {
    std::istringstream in("@a\nACGT\n+\nIIII\n@b\nTTTT\n+\nIIII\n");
    pipeline::StreamingReaderConfig config;
    config.batch_size = 1000;
    pipeline::StreamingFastxReader reader(in, config);
    genomics::ReadBatch batch;
    ASSERT_TRUE(reader.next_batch(batch));
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.read_length, 4u);
    EXPECT_EQ(batch.reads[0].id, 0u);
    EXPECT_EQ(batch.reads[1].id, 1u);
    EXPECT_FALSE(reader.next_batch(batch));
}

TEST(StreamingFastxReader, ChunksIntoFixedBatches) {
    std::string text;
    for (int i = 0; i < 10; ++i) {
        text += "@r" + std::to_string(i) + "\nACGTACGT\n+\nIIIIIIII\n";
    }
    std::istringstream in(text);
    pipeline::StreamingReaderConfig config;
    config.batch_size = 4;
    pipeline::StreamingFastxReader reader(in, config);
    genomics::ReadBatch batch;
    std::vector<std::size_t> sizes;
    while (reader.next_batch(batch)) sizes.push_back(batch.size());
    EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 4, 2}));
    EXPECT_EQ(reader.stats().batches, 3u);
    EXPECT_EQ(reader.stats().records, 10u);
}

TEST(StreamingFastxReader, MalformedMidBatchDroppedAndCounted) {
    // Record 2 is truncated (missing quality line swallows the next
    // header slot), record 4 has a stray line; drop policy keeps going.
    const std::string text = "@r0\nAAAA\n+\nIIII\n"
                             "@r1\nCCCC\n+\n"
                             "@r2\nGGGG\n+\nIIII\n"
                             "stray line\n"
                             "@r3\nTTTT\n+\nIIII\n";
    std::istringstream in(text);
    pipeline::StreamingFastxReader reader(in);
    genomics::ReadBatch batch;
    ASSERT_TRUE(reader.next_batch(batch));
    // r1's missing quality line swallows r2's header, so the parser
    // reports malformed once per orphaned line until it resyncs at the
    // next '@' — what matters is that it resyncs and nothing is fatal.
    EXPECT_EQ(reader.stats().dropped_malformed, 5u);
    EXPECT_FALSE(reader.stats().last_error.empty());
    // r0 and r3 survive; the r1/r2 tangle costs both records.
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.reads[0].name, "r0");
    EXPECT_EQ(batch.reads[1].name, "r3");
}

TEST(StreamingFastxReader, FailFastPolicyThrows) {
    std::istringstream in("@r0\nAAAA\n+\nII\n");
    pipeline::StreamingReaderConfig config;
    config.on_malformed = pipeline::OnMalformed::Fail;
    pipeline::StreamingFastxReader reader(in, config);
    genomics::ReadBatch batch;
    EXPECT_THROW(reader.next_batch(batch), std::runtime_error);
}

TEST(StreamingFastxReader, LocksReadLengthToFirstRecord) {
    std::istringstream in("@a\nACGTAC\n+\nIIIIII\n@b\nACG\n+\nIII\n"
                          "@c\nGGGGGG\n+\nIIIIII\n");
    pipeline::StreamingFastxReader reader(in);
    genomics::ReadBatch batch;
    ASSERT_TRUE(reader.next_batch(batch));
    EXPECT_EQ(batch.read_length, 6u);
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_EQ(reader.stats().dropped_length, 1u);
}

// ---------------------------------------------------------------------
// BatchPipeline engine

TEST(BatchPipeline, EmitsInInputOrderDespiteSkewedWorkers) {
    pipeline::PipelineConfig config;
    config.queue_depth = 2;
    config.map_workers = 2;
    pipeline::BatchPipeline<int, int> engine(config);
    int next = 0;
    std::vector<std::size_t> seqs;
    std::vector<int> results;
    const auto stats = engine.run(
        [&](int& unit) {
            if (next >= 9) return false;
            unit = next++;
            return true;
        },
        [](const int& unit, std::size_t) {
            // Even units are slow: completion order is scrambled.
            std::this_thread::sleep_for(std::chrono::milliseconds(
                unit % 2 == 0 ? 12 : 1));
            return unit * 10;
        },
        [&](std::size_t seq, const int& unit, const int& result) {
            seqs.push_back(seq);
            EXPECT_EQ(result, unit * 10);
            results.push_back(result);
        });
    ASSERT_EQ(seqs.size(), 9u);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        EXPECT_EQ(seqs[i], i);
        EXPECT_EQ(results[i], static_cast<int>(i) * 10);
    }
    EXPECT_EQ(stats.units, 9u);
    // Backpressure bound: queues + workers + reorder buffer, not input
    // size.
    EXPECT_LE(stats.max_in_flight,
              2 * config.queue_depth + config.map_workers + 2);
}

TEST(BatchPipeline, SourceExceptionPropagates) {
    pipeline::BatchPipeline<int, int> engine({});
    EXPECT_THROW(
        engine.run([](int&) -> bool { throw std::runtime_error("boom"); },
                   [](const int& u, std::size_t) { return u; },
                   [](std::size_t, const int&, const int&) {}),
        std::runtime_error);
}

TEST(BatchPipeline, MapExceptionPropagates) {
    pipeline::BatchPipeline<int, int> engine({});
    int next = 0;
    EXPECT_THROW(
        engine.run(
            [&](int& unit) {
                unit = next++;
                return next <= 100;
            },
            [](const int&, std::size_t) -> int {
                throw std::runtime_error("map died");
            },
            [](std::size_t, const int&, const int&) {}),
        std::runtime_error);
}

// ---------------------------------------------------------------------
// End-to-end mapping equivalence

struct MappingFixture {
    genomics::Reference reference;
    genomics::MultiReference multi;
    index::FmIndex fm;
    genomics::SimulatedReads sim;

    static genomics::Reference make_reference(std::size_t length) {
        genomics::GenomeSimConfig config;
        config.length = length;
        config.seed = 7;
        return genomics::simulate_genome(config);
    }

    explicit MappingFixture(std::size_t genome = 300'000,
                            std::size_t n_reads = 400)
        : reference(make_reference(genome)),
          multi({{reference.name(), reference.sequence().to_string()}}),
          fm(multi.concatenated(), 4),
          sim([&] {
              genomics::ReadSimConfig config;
              config.n_reads = n_reads;
              config.read_length = 100;
              config.max_errors = 3;
              config.seed = 11;
              return genomics::simulate_reads(multi.concatenated(),
                                              config);
          }()) {}

    std::unique_ptr<core::HeterogeneousMapper> mapper(
        ocl::Device& device) const {
        core::HeterogeneousMapperConfig config;
        config.kernel.s_min = 14;
        return core::make_repute(multi.concatenated(), fm,
                                 {{&device, 1.0}}, config);
    }
};

ocl::DeviceProfile skew_profile(const char* name, std::uint32_t units,
                                double ops) {
    ocl::DeviceProfile p;
    p.name = name;
    p.compute_units = units;
    p.ops_per_unit_per_second = ops;
    p.global_memory_bytes = 1ULL << 31;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 1e-4;
    return p;
}

TEST(MappingPipeline, StreamingSamIsByteIdenticalToMonolithic) {
    const MappingFixture fix;
    const std::uint32_t delta = 3;
    const std::string fastq = fastq_text(fix.sim.batch);

    // Monolithic reference path: whole file -> one map -> one emit.
    std::ostringstream mono_sam;
    {
        std::istringstream in(fastq);
        const auto batch =
            genomics::to_read_batch(genomics::read_fastq(in));
        ocl::Device cpu(skew_profile("mono-cpu", 8, 1e9));
        pipeline::SamEmitter emitter(mono_sam, fix.multi, {true, delta});
        emitter.write_header();
        emitter.emit(batch, fix.mapper(cpu)->map(batch, delta));
    }

    // Streaming path over a deliberately skewed two-device fleet (the
    // fig3 skew setup): the fast worker races ahead, the ordering
    // buffer must still emit in input order.
    std::ostringstream stream_sam;
    {
        std::istringstream in(fastq);
        pipeline::StreamingReaderConfig reader_config;
        reader_config.batch_size = 48;
        pipeline::StreamingFastxReader reader(in, reader_config);

        ocl::Device fast(skew_profile("fast-gpu", 16, 6e8));
        ocl::Device slow(skew_profile("slow-cpu", 2, 6e7));
        auto mapper_fast = fix.mapper(fast);
        auto mapper_slow = fix.mapper(slow);
        std::vector<core::Mapper*> mappers = {mapper_fast.get(),
                                              mapper_slow.get()};

        pipeline::SamEmitter emitter(stream_sam, fix.multi,
                                     {true, delta});
        emitter.write_header();
        pipeline::PipelineConfig config;
        config.queue_depth = 3;
        std::size_t expected_seq = 0;
        const auto stats = pipeline::run_mapping_pipeline(
            reader, mappers, delta,
            [&](std::size_t seq, const genomics::ReadBatch& batch,
                const core::MapResult& result) {
                EXPECT_EQ(seq, expected_seq++);
                emitter.emit(batch, result);
            },
            config);
        EXPECT_EQ(stats.units, reader.stats().batches);
        EXPECT_GT(stats.units, 4u);
    }

    EXPECT_EQ(mono_sam.str(), stream_sam.str());
}

TEST(MappingPipeline, PairedStreamingMatchesMonolithic) {
    const MappingFixture fix(200'000, 0);
    const std::uint32_t delta = 3;
    genomics::PairSimConfig pconfig;
    pconfig.n_pairs = 150;
    pconfig.read_length = 100;
    pconfig.max_errors = 2;
    pconfig.seed = 5;
    const auto pairs =
        genomics::simulate_pairs(fix.multi.concatenated(), pconfig);
    const std::string fastq1 = fastq_text(pairs.first);
    const std::string fastq2 = fastq_text(pairs.second);

    core::PairedConfig pair_config;
    pair_config.min_insert = 200;
    pair_config.max_insert = 500;

    std::ostringstream mono_sam;
    {
        ocl::Device cpu(skew_profile("mono-cpu", 8, 1e9));
        auto mapper = fix.mapper(cpu);
        core::PairedMapper paired(*mapper, fix.multi.concatenated(),
                                  pair_config);
        pipeline::SamEmitter emitter(mono_sam, fix.multi, {true, delta});
        emitter.write_header();
        emitter.emit_paired(
            pairs.first, pairs.second,
            paired.map_pairs(pairs.first, pairs.second, delta));
    }

    std::ostringstream stream_sam;
    {
        std::istringstream in1(fastq1), in2(fastq2);
        pipeline::StreamingReaderConfig reader_config;
        reader_config.batch_size = 32;
        pipeline::StreamingFastxReader r1(in1, reader_config);
        pipeline::StreamingFastxReader r2(in2, reader_config);

        ocl::Device fast(skew_profile("fast-gpu", 16, 6e8));
        ocl::Device slow(skew_profile("slow-cpu", 2, 6e7));
        auto mapper_fast = fix.mapper(fast);
        auto mapper_slow = fix.mapper(slow);
        core::PairedMapper paired_fast(*mapper_fast,
                                       fix.multi.concatenated(),
                                       pair_config);
        core::PairedMapper paired_slow(*mapper_slow,
                                       fix.multi.concatenated(),
                                       pair_config);
        std::vector<core::PairedMapper*> mappers = {&paired_fast,
                                                    &paired_slow};

        pipeline::SamEmitter emitter(stream_sam, fix.multi,
                                     {true, delta});
        emitter.write_header();
        pipeline::run_paired_pipeline(
            r1, r2, mappers, delta,
            [&](std::size_t, const pipeline::PairedUnit& unit,
                const core::PairedResult& result) {
                emitter.emit_paired(unit.first, unit.second, result);
            },
            {});
    }

    EXPECT_EQ(mono_sam.str(), stream_sam.str());
}

TEST(MappingPipeline, PairedDesyncThrows) {
    const MappingFixture fix(200'000, 0);
    // Mate 2 file is one record short.
    std::istringstream in1("@a\n" + std::string(100, 'A') + "\n+\n" +
                           std::string(100, 'I') + "\n@b\n" +
                           std::string(100, 'C') + "\n+\n" +
                           std::string(100, 'I') + "\n");
    std::istringstream in2("@a\n" + std::string(100, 'A') + "\n+\n" +
                           std::string(100, 'I') + "\n");
    pipeline::StreamingFastxReader r1(in1), r2(in2);
    ocl::Device cpu(skew_profile("cpu", 8, 1e9));
    auto mapper = fix.mapper(cpu);
    core::PairedMapper paired(*mapper, fix.multi.concatenated(), {});
    std::vector<core::PairedMapper*> mappers = {&paired};
    EXPECT_THROW(pipeline::run_paired_pipeline(
                     r1, r2, mappers, 3,
                     [](std::size_t, const pipeline::PairedUnit&,
                        const core::PairedResult&) {},
                     {}),
                 std::runtime_error);
}

TEST(MappingPipeline, RecordsMetricsWhenTracing) {
    const MappingFixture fix(150'000, 120);
    obs::TraceSession session;
    const std::string fastq = fastq_text(fix.sim.batch);
    std::istringstream in(fastq);
    pipeline::StreamingReaderConfig reader_config;
    reader_config.batch_size = 32;
    pipeline::StreamingFastxReader reader(in, reader_config);
    ocl::Device cpu(skew_profile("cpu", 8, 1e9));
    auto mapper = fix.mapper(cpu);
    std::vector<core::Mapper*> mappers = {mapper.get()};
    std::ostringstream sam;
    pipeline::SamEmitter emitter(sam, fix.multi, {false, 3});
    const auto stats = pipeline::run_mapping_pipeline(
        reader, mappers, 3,
        [&](std::size_t, const genomics::ReadBatch& batch,
            const core::MapResult& result) {
            emitter.emit(batch, result);
        },
        {});
    EXPECT_EQ(session.registry().counter("pipeline.batches").value(),
              stats.units);
    EXPECT_EQ(session.registry()
                  .histogram("pipeline.batch_map_seconds")
                  .snapshot()
                  .count,
              stats.units);
    EXPECT_GT(stats.max_in_flight, 0u);
    EXPECT_FALSE(stats.format().empty());
}

} // namespace
} // namespace repute
