// Suffix array and FM-Index correctness: SA-IS against the naive
// reference builder, backward search against brute-force scanning, and
// locate against the true suffix array.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <string>

#include "genomics/genome_sim.hpp"
#include "index/fm_index.hpp"
#include "index/qgram_table.hpp"
#include "index/suffix_array.hpp"
#include "util/prng.hpp"

namespace {

using repute::genomics::GenomeSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::index::build_suffix_array;
using repute::index::build_suffix_array_naive;
using repute::index::FmIndex;
using repute::index::sais;
using repute::util::PackedDna;
using repute::util::Xoshiro256;

std::string random_dna(Xoshiro256& rng, std::size_t n) {
    std::string s(n, 'A');
    for (auto& c : s) c = "ACGT"[rng.bounded(4)];
    return s;
}

/// Brute-force occurrence count of `pattern` in `text`.
std::size_t count_occurrences(const std::string& text,
                              const std::string& pattern) {
    if (pattern.empty() || pattern.size() > text.size()) return 0;
    std::size_t count = 0;
    for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
        if (text.compare(i, pattern.size(), pattern) == 0) ++count;
    }
    return count;
}

std::vector<std::uint8_t> to_codes(const std::string& s) {
    std::vector<std::uint8_t> codes(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        codes[i] = repute::util::base_to_code(s[i]);
    }
    return codes;
}

// ---------------------------------------------------------------- SA-IS

TEST(SuffixArray, MatchesNaiveOnFixedStrings) {
    for (const char* text :
         {"A", "AAAA", "ACGT", "BANANA-like: ABABABAB",
          "GATTACAGATTACA", "TTTTTTTTTTTTTTTTTTTT",
          "ACGTACGTACGTACGTACGTA"}) {
        // Non-ACGT bytes map to A via base_to_code; still a valid test.
        PackedDna dna{std::string_view(text)};
        EXPECT_EQ(build_suffix_array(dna), build_suffix_array_naive(dna))
            << "text: " << text;
    }
}

TEST(SuffixArray, MatchesNaiveOnRandomStrings) {
    Xoshiro256 rng(7);
    for (int round = 0; round < 50; ++round) {
        const std::size_t n = 1 + rng.bounded(400);
        PackedDna dna{random_dna(rng, n)};
        ASSERT_EQ(build_suffix_array(dna), build_suffix_array_naive(dna))
            << "round " << round << " n=" << n;
    }
}

TEST(SuffixArray, SentinelRowIsFirst) {
    PackedDna dna{std::string_view("ACGTACGT")};
    const auto sa = build_suffix_array(dna);
    ASSERT_EQ(sa.size(), dna.size() + 1);
    EXPECT_EQ(sa[0], static_cast<std::int32_t>(dna.size()));
}

TEST(SuffixArray, IsAPermutation) {
    Xoshiro256 rng(13);
    PackedDna dna{random_dna(rng, 1000)};
    const auto sa = build_suffix_array(dna);
    std::set<std::int32_t> seen(sa.begin(), sa.end());
    EXPECT_EQ(seen.size(), sa.size());
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), static_cast<std::int32_t>(dna.size()));
}

TEST(Sais, RejectsMissingSentinel) {
    const std::vector<std::int32_t> no_sentinel = {1, 2, 3};
    EXPECT_THROW(sais(no_sentinel, 4), std::invalid_argument);
    const std::vector<std::int32_t> zero_inside = {1, 0, 2, 0};
    EXPECT_THROW(sais(zero_inside, 4), std::invalid_argument);
}

TEST(Sais, SortsIntegerAlphabet) {
    // abracadabra-style over small ints: 3 1 4 1 5 ... with sentinel.
    const std::vector<std::int32_t> text = {3, 1, 4, 1, 5, 9, 2, 6, 5,
                                            3, 5, 8, 9, 7, 9, 3, 2, 0};
    const auto sa = sais(text, 10);
    ASSERT_EQ(sa.size(), text.size());
    auto suffix_less = [&](std::int32_t a, std::int32_t b) {
        return std::lexicographical_compare(
            text.begin() + a, text.end(), text.begin() + b, text.end());
    };
    for (std::size_t i = 1; i < sa.size(); ++i) {
        EXPECT_TRUE(suffix_less(sa[i - 1], sa[i]))
            << "rows " << i - 1 << ", " << i;
    }
}

// ------------------------------------------------------------- FM-Index

class FmIndexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FmIndexRandomTest, CountsMatchBruteForce) {
    Xoshiro256 rng(GetParam());
    const std::size_t n = 200 + rng.bounded(2000);
    const std::string text = random_dna(rng, n);
    const Reference ref("t", PackedDna{text});
    const FmIndex fm(ref, /*sa_sample=*/1 + GetParam() % 7);

    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t len = 1 + rng.bounded(24);
        std::string pattern;
        if (rng.chance(0.7) && len <= n) {
            const std::size_t pos = rng.bounded(n - len + 1);
            pattern = text.substr(pos, len); // guaranteed present
        } else {
            pattern = random_dna(rng, len);
        }
        const auto range = fm.search(to_codes(pattern));
        EXPECT_EQ(range.count(), count_occurrences(text, pattern))
            << "pattern " << pattern;
    }
}

TEST_P(FmIndexRandomTest, LocateReturnsTrueOccurrences) {
    Xoshiro256 rng(GetParam() * 31 + 5);
    const std::size_t n = 500 + rng.bounded(1500);
    const std::string text = random_dna(rng, n);
    const Reference ref("t", PackedDna{text});
    const FmIndex fm(ref, /*sa_sample=*/4);

    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t len = 4 + rng.bounded(16);
        const std::size_t pos = rng.bounded(n - len + 1);
        const std::string pattern = text.substr(pos, len);
        const auto range = fm.search(to_codes(pattern));
        ASSERT_FALSE(range.empty());

        std::vector<std::uint32_t> hits;
        fm.locate_range(range, range.count(), hits);
        ASSERT_EQ(hits.size(), range.count());
        std::sort(hits.begin(), hits.end());
        EXPECT_TRUE(std::binary_search(hits.begin(), hits.end(), pos));
        for (const auto h : hits) {
            EXPECT_EQ(text.substr(h, len), pattern) << "hit at " << h;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmIndexRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FmIndex, WholeRangeAndEmptyPattern) {
    const Reference ref("t", PackedDna{std::string_view("ACGTACGTAC")});
    const FmIndex fm(ref);
    const auto whole = fm.whole_range();
    EXPECT_EQ(whole.count(), ref.size() + 1);
    EXPECT_EQ(fm.search({}).count(), whole.count());
}

TEST(FmIndex, ExtendAgreesWithSearch) {
    Xoshiro256 rng(99);
    const std::string text = random_dna(rng, 3000);
    const Reference ref("t", PackedDna{text});
    const FmIndex fm(ref);

    // A pattern guaranteed present: extend never hits an empty range,
    // so the step-by-step walk must land on exactly search()'s range.
    const std::string pattern = text.substr(1234, 12);
    const auto codes = to_codes(pattern);
    auto range = fm.whole_range();
    for (std::size_t i = codes.size(); i-- > 0;) {
        range = fm.extend(range, codes[i]);
    }
    EXPECT_EQ(range, fm.search(codes));
    EXPECT_FALSE(range.empty());

    // For an absent pattern both must agree that the range is empty
    // (the exact lo/hi of an empty range is unspecified).
    const auto absent = to_codes(random_dna(rng, 40));
    auto r2 = fm.whole_range();
    for (std::size_t i = absent.size(); i-- > 0;) {
        r2 = fm.extend(r2, absent[i]);
    }
    EXPECT_EQ(r2.empty(), fm.search(absent).empty());
}

TEST(FmIndex, LfWalksTextBackwards) {
    const std::string text = "GATTACA";
    const Reference ref("t", PackedDna{std::string_view(text)});
    const FmIndex fm(ref, /*sa_sample=*/1);
    // Row 0 is the sentinel suffix (text position n). Walking LF from
    // the row of suffix k reaches the row of suffix k-1.
    // Instead verify: locate(lf(row)) == locate(row) - 1 for rows whose
    // suffix position > 0.
    for (std::uint32_t row = 0; row <= text.size(); ++row) {
        const auto pos = fm.locate(row);
        if (pos == 0) continue;
        EXPECT_EQ(fm.locate(fm.lf(row)), pos - 1) << "row " << row;
    }
}

TEST(FmIndex, OccIsMonotoneAndConsistent) {
    Xoshiro256 rng(123);
    const std::string text = random_dna(rng, 4096);
    const Reference ref("t", PackedDna{text});
    const FmIndex fm(ref);
    const auto rows = static_cast<std::uint32_t>(text.size() + 1);
    for (std::uint8_t c = 0; c < 4; ++c) {
        std::uint32_t prev = 0;
        for (std::uint32_t i = 0; i <= rows; i += 97) {
            const auto o = fm.occ(c, i);
            EXPECT_GE(o, prev);
            EXPECT_LE(o - prev, i == 0 ? 0u : 97u);
            prev = o;
        }
    }
    // Total symbol counts add up to n (sentinel excluded).
    EXPECT_EQ(fm.occ(0, rows) + fm.occ(1, rows) + fm.occ(2, rows) +
                  fm.occ(3, rows),
              text.size());
}

TEST(FmIndex, OccMatchesScalarReferenceAcrossGeometries) {
    // Property: the interleaved rank blocks (checkpoint counts + packed
    // BWT + u8 sub-counts fused per cache line) must answer occ()
    // exactly like a scalar count over the BWT — for every row, symbol,
    // and block geometry, including the word-scan fallback used when
    // checkpoint_every is too large for u8 sub-counts (> 256).
    Xoshiro256 rng(2026);
    for (const std::uint32_t cpe : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        const std::size_t n = 700 + rng.bounded(3000);
        const std::string text = random_dna(rng, n);
        const Reference ref("t", PackedDna{text});
        const FmIndex fm(ref, /*sa_sample=*/4, cpe);

        // Scalar reference: BWT[row] = text[sa[row] - 1] (sentinel row
        // excluded from every symbol's count).
        const auto sa = build_suffix_array(ref.sequence());
        std::array<std::vector<std::uint32_t>, 4> prefix;
        for (auto& p : prefix) p.assign(sa.size() + 1, 0);
        for (std::size_t row = 0; row < sa.size(); ++row) {
            for (int c = 0; c < 4; ++c) {
                prefix[c][row + 1] = prefix[c][row];
            }
            if (sa[row] != 0) {
                ++prefix[repute::util::base_to_code(
                    text[static_cast<std::size_t>(sa[row]) - 1])][row + 1];
            }
        }
        for (std::uint32_t row = 0; row <= n + 1; ++row) {
            for (std::uint8_t c = 0; c < 4; ++c) {
                ASSERT_EQ(fm.occ(c, row), prefix[c][row])
                    << "cpe=" << cpe << " row=" << row << " code="
                    << int(c);
            }
        }
    }
}

TEST(FmIndex, QGramLookupsMatchBackwardSearch) {
    // Every jump-table hit must be the exact range a symbol-by-symbol
    // backward search produces — the invariant that makes the q-gram
    // fast path output-invisible.
    Xoshiro256 rng(777);
    const std::string text = random_dna(rng, 20'000);
    const Reference ref("t", PackedDna{text});
    const FmIndex fm(ref, 4, 128, /*qgram_length=*/8);
    const auto* qt = fm.qgrams();
    ASSERT_NE(qt, nullptr);

    for (int trial = 0; trial < 400; ++trial) {
        const std::uint32_t len = 1 + rng.bounded(qt->q());
        std::vector<std::uint8_t> codes(len);
        if (rng.chance(0.7)) {
            const std::size_t pos = rng.bounded(text.size() - len);
            for (std::uint32_t i = 0; i < len; ++i) {
                codes[i] = repute::util::base_to_code(text[pos + i]);
            }
        } else {
            for (auto& c : codes) {
                c = static_cast<std::uint8_t>(rng.bounded(4));
            }
        }
        const auto expected = fm.search(codes);
        const auto got = qt->lookup(codes);
        if (expected.empty()) {
            EXPECT_TRUE(got.empty()) << "trial " << trial;
        } else {
            EXPECT_EQ(got, expected) << "trial " << trial;
        }
        // The incremental-index form scanners use (prepend symbol c to a
        // length-L pattern: idx |= c << 2L) must agree with the span form.
        std::uint64_t idx = 0;
        for (std::uint32_t l = 1; l <= len; ++l) {
            idx |= static_cast<std::uint64_t>(codes[len - l])
                   << (2 * (l - 1));
        }
        EXPECT_EQ(qt->lookup(len, idx).count(), got.count());
    }
}

TEST(FmIndex, QGramTableCappedByReferenceFootprint) {
    // The effective q shrinks on small references so the table never
    // outweighs the text it accelerates; q=0 disables it entirely.
    Xoshiro256 rng(31);
    const std::string small = random_dna(rng, 1000);
    const FmIndex tiny(Reference("s", PackedDna{small}), 4, 128, 8);
    ASSERT_NE(tiny.qgrams(), nullptr);
    EXPECT_LT(tiny.qgrams()->q(), 8u);
    EXPECT_LE(repute::index::QGramTable::table_bytes(tiny.qgrams()->q()),
              std::max<std::size_t>(small.size() + 1, 4096));

    const FmIndex off(Reference("s", PackedDna{small}), 4, 128, 0);
    EXPECT_EQ(off.qgrams(), nullptr);
}

TEST(FmIndex, WorksOnRepeatRichSimulatedGenome) {
    GenomeSimConfig config;
    config.length = 50'000;
    config.seed = 42;
    const Reference ref = simulate_genome(config);
    const FmIndex fm(ref, 4);

    Xoshiro256 rng(4242);
    const std::string text = ref.sequence().to_string();
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t len = 8 + rng.bounded(20);
        const std::size_t pos = rng.bounded(text.size() - len);
        const std::string pattern = text.substr(pos, len);
        EXPECT_EQ(fm.search(to_codes(pattern)).count(),
                  count_occurrences(text, pattern));
    }
}

} // namespace
