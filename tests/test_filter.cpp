// Filtration: partition invariants for every seeder, equivalence of the
// memory-optimized DP with the full Optimal Seed Solver, optimality of
// the DP against brute-force enumeration, frequency scanner consistency,
// and candidate gathering.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>

#include "filter/candidates.hpp"
#include "filter/frequency_scanner.hpp"
#include "filter/heuristic_seeder.hpp"
#include "filter/memopt_seeder.hpp"
#include "filter/optimal_seeder.hpp"
#include "filter/uniform_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "util/prng.hpp"

namespace {

using repute::filter::FrequencyScanner;
using repute::filter::gather_candidates;
using repute::filter::HeuristicSeeder;
using repute::filter::MemoryOptimizedSeeder;
using repute::filter::OptimalSeeder;
using repute::filter::Seeder;
using repute::filter::SeedPlan;
using repute::filter::UniformSeeder;
using repute::genomics::GenomeSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::index::FmIndex;
using repute::util::Xoshiro256;

/// Shared fixture: one repeat-rich genome + index for all filter tests.
class FilterTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig config;
        config.length = 120'000;
        config.seed = 11;
        reference_ = new Reference(simulate_genome(config));
        fm_ = new FmIndex(*reference_, 4);
    }
    static void TearDownTestSuite() {
        delete fm_;
        delete reference_;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    static std::vector<std::uint8_t> sample_read(Xoshiro256& rng,
                                                 std::size_t n) {
        const std::size_t pos = rng.bounded(reference_->size() - n);
        return reference_->sequence().extract(pos, n);
    }

    static void check_partition(const SeedPlan& plan, std::size_t n,
                                std::uint32_t delta, std::uint32_t s_min) {
        ASSERT_EQ(plan.seeds.size(), delta + 1);
        std::uint32_t expected_start = 0;
        for (const auto& seed : plan.seeds) {
            EXPECT_EQ(seed.start, expected_start);
            EXPECT_GE(seed.length, s_min);
            expected_start += seed.length;
        }
        EXPECT_EQ(expected_start, n);
    }

    static Reference* reference_;
    static FmIndex* fm_;
};

Reference* FilterTest::reference_ = nullptr;
FmIndex* FilterTest::fm_ = nullptr;

// --------------------------------------------------- partition contracts

class SeederContractTest
    : public FilterTest,
      public ::testing::WithParamInterface<int> {};

std::unique_ptr<Seeder> make_seeder(int kind, std::uint32_t s_min) {
    switch (kind) {
        case 0: return std::make_unique<UniformSeeder>(s_min);
        case 1: return std::make_unique<HeuristicSeeder>(s_min);
        case 2: return std::make_unique<OptimalSeeder>(s_min);
        default: return std::make_unique<MemoryOptimizedSeeder>(s_min);
    }
}

TEST_P(SeederContractTest, PartitionCoversReadWithMinLengths) {
    Xoshiro256 rng(100 + GetParam());
    for (const std::size_t n : {100u, 150u}) {
        for (const std::uint32_t delta : {3u, 5u, 7u}) {
            const std::uint32_t s_min = 12;
            if ((delta + 1) * s_min > n) continue;
            const auto seeder = make_seeder(GetParam(), s_min);
            for (int trial = 0; trial < 10; ++trial) {
                const auto read = sample_read(rng, n);
                const auto plan = seeder->select(*fm_, read, delta);
                check_partition(plan, n, delta, s_min);
                // total_candidates is the sum of the seed range counts.
                std::uint64_t sum = 0;
                for (const auto& s : plan.seeds) sum += s.range.count();
                EXPECT_EQ(plan.total_candidates, sum);
            }
        }
    }
}

TEST_P(SeederContractTest, RejectsImpossibleParameters) {
    const auto seeder = make_seeder(GetParam(), 20);
    const std::vector<std::uint8_t> read(100, 1);
    // 6 seeds x 20 = 120 > 100.
    EXPECT_THROW((void)seeder->select(*fm_, read, 5),
                 std::invalid_argument);
}

TEST_P(SeederContractTest, ScratchBoundIsPositive) {
    const auto seeder = make_seeder(GetParam(), 12);
    EXPECT_GT(seeder->scratch_bound(100, 5), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSeeders, SeederContractTest,
                         ::testing::Values(0, 1, 2, 3));

// ------------------------------------ memory-optimized == full OSS

TEST_F(FilterTest, MemoptMatchesFullOssOnRandomReads) {
    Xoshiro256 rng(77);
    for (const std::uint32_t s_min : {10u, 12u, 14u, 16u}) {
        const OptimalSeeder full(s_min);
        const MemoryOptimizedSeeder memopt(s_min);
        for (const std::size_t n : {100u, 150u}) {
            for (const std::uint32_t delta : {3u, 4u, 5u, 6u, 7u}) {
                if ((delta + 1) * s_min > n) continue;
                for (int trial = 0; trial < 8; ++trial) {
                    const auto read = sample_read(rng, n);
                    const auto a = full.select(*fm_, read, delta);
                    const auto b = memopt.select(*fm_, read, delta);
                    ASSERT_EQ(a.seeds.size(), b.seeds.size());
                    for (std::size_t s = 0; s < a.seeds.size(); ++s) {
                        EXPECT_EQ(a.seeds[s].start, b.seeds[s].start);
                        EXPECT_EQ(a.seeds[s].length, b.seeds[s].length);
                    }
                    EXPECT_EQ(a.total_candidates, b.total_candidates);
                }
            }
        }
    }
}

TEST_F(FilterTest, MemoptUsesLessScratchThanFullOss) {
    const OptimalSeeder full(12);
    const MemoryOptimizedSeeder memopt(12);
    for (const std::size_t n : {100u, 150u}) {
        for (const std::uint32_t delta : {3u, 5u, 7u}) {
            EXPECT_LT(memopt.scratch_bound(n, delta),
                      full.scratch_bound(n, delta))
                << "n=" << n << " delta=" << delta;
        }
    }
}

// ---------------------------------------------- optimality (brute force)

TEST_F(FilterTest, DpIsOptimalAgainstBruteForceEnumeration) {
    // Short reads keep the brute-force partition count manageable.
    Xoshiro256 rng(31);
    const std::uint32_t s_min = 8;
    const std::uint32_t delta = 2; // 3 seeds
    const std::size_t n = 36;
    const MemoryOptimizedSeeder seeder(s_min);

    for (int trial = 0; trial < 20; ++trial) {
        const auto read = sample_read(rng, n);
        const auto plan = seeder.select(*fm_, read, delta);

        // Enumerate all (d1, d2) with seeds >= s_min.
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        FrequencyScanner scanner(*fm_, read);
        for (std::uint32_t d1 = s_min; d1 + 2 * s_min <= n; ++d1) {
            for (std::uint32_t d2 = d1 + s_min; d2 + s_min <= n; ++d2) {
                const std::uint64_t total =
                    scanner.frequency(0, d1) + scanner.frequency(d1, d2) +
                    scanner.frequency(d2, static_cast<std::uint32_t>(n));
                best = std::min(best, total);
            }
        }
        EXPECT_EQ(plan.total_candidates, best) << "trial " << trial;
    }
}

TEST_F(FilterTest, DpNeverWorseThanUniformOrHeuristic) {
    Xoshiro256 rng(53);
    const std::uint32_t s_min = 12;
    const MemoryOptimizedSeeder dp(s_min);
    const UniformSeeder uniform(s_min);
    const HeuristicSeeder heuristic(s_min);
    for (int trial = 0; trial < 30; ++trial) {
        const auto read = sample_read(rng, 100);
        const std::uint32_t delta = 3 + trial % 3;
        const auto dp_plan = dp.select(*fm_, read, delta);
        EXPECT_LE(dp_plan.total_candidates,
                  uniform.select(*fm_, read, delta).total_candidates);
        EXPECT_LE(dp_plan.total_candidates,
                  heuristic.select(*fm_, read, delta).total_candidates);
    }
}

// --------------------------------------------------- frequency scanner

TEST_F(FilterTest, SuffixFrequenciesMatchDirectSearch) {
    Xoshiro256 rng(41);
    const auto read = sample_read(rng, 80);
    FrequencyScanner scanner(*fm_, read);

    const std::uint32_t end = 60;
    const std::uint32_t min_start = 20;
    std::vector<std::uint32_t> freqs(end - min_start);
    scanner.suffix_frequencies(min_start, end, freqs);

    for (std::uint32_t d = min_start; d < end; ++d) {
        const auto direct = fm_->search(
            std::span(read).subspan(d, end - d));
        EXPECT_EQ(freqs[d - min_start], direct.count()) << "d=" << d;
    }
}

TEST_F(FilterTest, FrequencyShortCircuitsOnEmptyRange) {
    // A read full of the same base eventually has zero-frequency long
    // k-mers only if the genome lacks such runs; either way the scanner
    // must agree with direct search and never crash.
    std::vector<std::uint8_t> read(64, 2);
    FrequencyScanner scanner(*fm_, read);
    std::uint64_t extends = 0;
    const auto f = scanner.frequency(0, 64, &extends);
    EXPECT_EQ(f, fm_->search(read).count());
    EXPECT_LE(extends, 64u);
}

// -------------------------------------------------------- candidates

TEST_F(FilterTest, CandidatesContainTrueOriginForExactReads) {
    Xoshiro256 rng(67);
    const MemoryOptimizedSeeder seeder(12);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 100;
        const std::size_t pos = rng.bounded(reference_->size() - n);
        const auto read = reference_->sequence().extract(pos, n);
        const auto plan = seeder.select(*fm_, read, 5);
        const auto cands = gather_candidates(
            *fm_, plan, static_cast<std::uint32_t>(n), 5, {});
        // The true position must be within merge radius of a candidate.
        bool found = false;
        for (const auto c : cands.positions) {
            if (c <= pos + 5 && pos <= c + 5) found = true;
        }
        EXPECT_TRUE(found) << "true pos " << pos;
    }
}

TEST_F(FilterTest, CandidatesAreSortedAndDeduped) {
    Xoshiro256 rng(71);
    const UniformSeeder seeder(10);
    const auto read = sample_read(rng, 100);
    const auto plan = seeder.select(*fm_, read, 4);
    const auto cands = gather_candidates(*fm_, plan, 100, 4, {});
    for (std::size_t i = 1; i < cands.positions.size(); ++i) {
        EXPECT_GT(cands.positions[i], cands.positions[i - 1] + 4);
    }
}

TEST_F(FilterTest, MaxHitsPerSeedCapsLocates) {
    Xoshiro256 rng(73);
    const UniformSeeder seeder(10);
    const auto read = sample_read(rng, 100);
    const auto plan = seeder.select(*fm_, read, 4);
    repute::filter::CandidateConfig config;
    config.max_hits_per_seed = 2;
    const auto cands = gather_candidates(*fm_, plan, 100, 4, config);
    EXPECT_LE(cands.located_hits, 2u * plan.seeds.size());
}

TEST_F(FilterTest, JumpTablePathMatchesPlainBackwardSearch) {
    // The q-gram jump table is a pure fast path: every seeder must
    // produce the same partition, ranges, and candidate totals whether
    // the index carries a table (default q=8) or none at all (q=0) —
    // only the extends-vs-jumps accounting split may differ.
    const FmIndex no_jump(*reference_, 4, 128, /*qgram_length=*/0);
    ASSERT_NE(fm_->qgrams(), nullptr);
    ASSERT_EQ(no_jump.qgrams(), nullptr);

    const MemoryOptimizedSeeder memopt(12);
    const OptimalSeeder optimal(12);
    const UniformSeeder uniform(10);
    const Seeder* seeders[] = {&memopt, &optimal, &uniform};

    Xoshiro256 rng(2468);
    for (int trial = 0; trial < 10; ++trial) {
        const auto read = sample_read(rng, 80 + rng.bounded(120));
        const std::uint32_t delta = 2 + rng.bounded(4);
        for (const Seeder* s : seeders) {
            SCOPED_TRACE(std::string(s->name()) + " trial " +
                         std::to_string(trial));
            const SeedPlan with = s->select(*fm_, read, delta);
            const SeedPlan without = s->select(no_jump, read, delta);
            ASSERT_EQ(with.seeds.size(), without.seeds.size());
            for (std::size_t i = 0; i < with.seeds.size(); ++i) {
                EXPECT_EQ(with.seeds[i].start, without.seeds[i].start);
                EXPECT_EQ(with.seeds[i].length, without.seeds[i].length);
                EXPECT_EQ(with.seeds[i].range.count(),
                          without.seeds[i].range.count());
                if (!with.seeds[i].range.empty()) {
                    EXPECT_EQ(with.seeds[i].range, without.seeds[i].range);
                }
            }
            EXPECT_EQ(with.total_candidates, without.total_candidates);
            EXPECT_EQ(with.dp_cells, without.dp_cells);
            EXPECT_GT(with.qgram_jumps, 0u);
            EXPECT_EQ(without.qgram_jumps, 0u);
            EXPECT_LT(with.fm_extends, without.fm_extends);
        }
    }
}

TEST_F(FilterTest, ExplorationSpaceFormula) {
    EXPECT_EQ(MemoryOptimizedSeeder::exploration_space(100, 4, 10), 50u);
    EXPECT_EQ(MemoryOptimizedSeeder::exploration_space(150, 5, 22), 18u);
    EXPECT_EQ(MemoryOptimizedSeeder::exploration_space(100, 4, 20), 0u);
}

} // namespace
