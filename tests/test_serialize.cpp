// Binary serialization round trips for BitVector, PackedDna, FmIndex,
// and corruption detection.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "genomics/genome_sim.hpp"
#include "index/fm_index.hpp"
#include "util/bitvector.hpp"
#include "util/packed_dna.hpp"
#include "util/prng.hpp"
#include "util/serialize.hpp"

namespace {

using repute::genomics::GenomeSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::index::FmIndex;
using repute::util::BitVector;
using repute::util::PackedDna;
using repute::util::Xoshiro256;

TEST(Serialize, PodAndVectorRoundTrip) {
    std::stringstream io;
    repute::util::write_pod<std::uint32_t>(io, 0xDEADBEEF);
    repute::util::write_vector<std::uint16_t>(io, {1, 2, 3});
    EXPECT_EQ(repute::util::read_pod<std::uint32_t>(io), 0xDEADBEEFu);
    EXPECT_EQ(repute::util::read_vector<std::uint16_t>(io),
              (std::vector<std::uint16_t>{1, 2, 3}));
}

TEST(Serialize, ShortReadThrows) {
    std::stringstream io;
    repute::util::write_pod<std::uint16_t>(io, 7);
    EXPECT_THROW((void)repute::util::read_pod<std::uint64_t>(io),
                 std::runtime_error);
}

TEST(Serialize, BitVectorRoundTripPreservesRank) {
    Xoshiro256 rng(3);
    BitVector bv(5000);
    for (int i = 0; i < 700; ++i) bv.set(rng.bounded(5000));
    bv.build_rank();

    std::stringstream io;
    bv.save(io);
    const BitVector loaded = BitVector::load(io);
    ASSERT_EQ(loaded.size(), bv.size());
    EXPECT_EQ(loaded.count_ones(), bv.count_ones());
    for (std::size_t i = 0; i <= 5000; i += 37) {
        EXPECT_EQ(loaded.rank1(i), bv.rank1(i)) << "i=" << i;
    }
}

TEST(Serialize, PackedDnaRoundTrip) {
    Xoshiro256 rng(4);
    std::string s(513, 'A');
    for (auto& c : s) c = "ACGT"[rng.bounded(4)];
    const PackedDna dna{std::string_view(s)};

    std::stringstream io;
    dna.save(io);
    EXPECT_EQ(PackedDna::load(io), dna);
}

TEST(Serialize, BadMagicDetected) {
    std::stringstream io;
    PackedDna dna{std::string_view("ACGT")};
    dna.save(io);
    EXPECT_THROW((void)BitVector::load(io), std::runtime_error);
}

TEST(Serialize, FmIndexRoundTripAnswersIdentically) {
    GenomeSimConfig config;
    config.length = 40'000;
    config.seed = 77;
    const Reference ref = simulate_genome(config);
    const FmIndex original(ref, 4);

    std::stringstream io;
    original.save(io);
    const FmIndex loaded = FmIndex::load(io);

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.memory_bytes(), original.memory_bytes());

    Xoshiro256 rng(5);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t len = 6 + rng.bounded(20);
        const std::size_t pos = rng.bounded(ref.size() - len);
        const auto pattern = ref.sequence().extract(pos, len);
        const auto a = original.search(pattern);
        const auto b = loaded.search(pattern);
        ASSERT_EQ(a, b);
        std::vector<std::uint32_t> ha, hb;
        original.locate_range(a, 32, ha);
        loaded.locate_range(b, 32, hb);
        EXPECT_EQ(ha, hb);
    }
}

TEST(Serialize, FmIndexRejectsLegacyLayoutMagic) {
    // Pre-interleaved images ("FMIX") stored checkpoint tables and BWT
    // words separately; the block layout cannot be reconstructed from a
    // header alone, so load must fail loudly with a rebuild hint rather
    // than misread the stream.
    std::stringstream io;
    repute::util::write_pod<std::uint32_t>(io, 0x464D4958u); // "FMIX"
    repute::util::write_pod<std::uint64_t>(io, 100);
    try {
        (void)FmIndex::load(io);
        FAIL() << "legacy magic accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("legacy"),
                  std::string::npos);
    }
}

TEST(Serialize, FmIndexRejectsUnknownMagic) {
    std::stringstream io;
    repute::util::write_pod<std::uint32_t>(io, 0x12345678u);
    EXPECT_THROW((void)FmIndex::load(io), std::runtime_error);
}

TEST(Serialize, FmIndexTruncatedStreamThrows) {
    GenomeSimConfig config;
    config.length = 5'000;
    const Reference ref = simulate_genome(config);
    const FmIndex original(ref, 4);
    std::stringstream io;
    original.save(io);
    const std::string bytes = io.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW((void)FmIndex::load(truncated), std::runtime_error);
}

} // namespace
