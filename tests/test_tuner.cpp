// Workload auto-tuner: finish-together shares track measured device
// throughput; incapable devices are excluded; tuned splits beat naive
// ones.

#include <gtest/gtest.h>

#include "core/repute_mapper.hpp"
#include "core/tuner.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"

namespace {

using repute::core::tune_shares;
using repute::core::TuneConfig;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::SimulatedReads;
using repute::index::FmIndex;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;

DeviceProfile profile(const char* name, std::uint32_t units,
                      double ops_per_unit,
                      std::uint64_t private_mem = 1 << 20) {
    DeviceProfile p;
    p.name = name;
    p.compute_units = units;
    p.ops_per_unit_per_second = ops_per_unit;
    p.global_memory_bytes = 1ULL << 30;
    p.private_memory_per_unit = private_mem;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

class TunerTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 100'000;
        gconfig.seed = 41;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);
        ReadSimConfig rconfig;
        rconfig.n_reads = 600;
        rconfig.read_length = 100;
        rconfig.max_errors = 4;
        sim_ = new SimulatedReads(simulate_reads(*reference_, rconfig));
    }
    static void TearDownTestSuite() {
        delete sim_;
        delete fm_;
        delete reference_;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedReads* sim_;
};

Reference* TunerTest::reference_ = nullptr;
FmIndex* TunerTest::fm_ = nullptr;
SimulatedReads* TunerTest::sim_ = nullptr;

TEST_F(TunerTest, SharesProportionalToThroughput) {
    Device fast(profile("fast", 8, 1e9));
    Device slow(profile("slow", 8, 0.25e9)); // 4x slower
    const auto tuned = tune_shares(*reference_, *fm_, sim_->batch, 4, 12,
                                   {&fast, &slow});
    ASSERT_EQ(tuned.shares.size(), 2u);
    const double ratio =
        tuned.shares[0].fraction / tuned.shares[1].fraction;
    EXPECT_NEAR(ratio, 4.0, 0.4);
    EXPECT_GT(tuned.predicted_seconds, 0.0);
}

TEST_F(TunerTest, IncapableDeviceExcluded) {
    Device good(profile("good", 8, 1e9));
    Device cramped(profile("cramped", 8, 1e9, /*private_mem=*/64));
    const auto tuned = tune_shares(*reference_, *fm_, sim_->batch, 4, 12,
                                   {&good, &cramped});
    EXPECT_GT(tuned.shares[0].fraction, 0.0);
    EXPECT_DOUBLE_EQ(tuned.shares[1].fraction, 0.0);
}

TEST_F(TunerTest, TunedSplitFinishesTogether) {
    Device a(profile("a", 8, 1e9));
    Device b(profile("b", 4, 0.5e9));
    const auto tuned = tune_shares(*reference_, *fm_, sim_->batch, 4, 12,
                                   {&a, &b});
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            tuned.shares);
    const auto result = mapper->map(sim_->batch, 4);
    ASSERT_EQ(result.device_runs.size(), 2u);
    const double ta = result.device_runs[0].stats.seconds;
    const double tb = result.device_runs[1].stats.seconds;
    // Devices finish within ~25% of each other (probe noise allowed).
    EXPECT_LT(std::max(ta, tb) / std::min(ta, tb), 1.25);

    // And the tuned split beats a deliberately bad 50/50 split.
    auto naive = repute::core::make_repute(*reference_, *fm_,
                                           {{&a, 0.5}, {&b, 0.5}});
    const auto naive_result = naive->map(sim_->batch, 4);
    EXPECT_LT(result.mapping_seconds, naive_result.mapping_seconds);
}

TEST_F(TunerTest, PredictionTracksActualTime) {
    Device a(profile("a", 8, 1e9));
    const auto tuned =
        tune_shares(*reference_, *fm_, sim_->batch, 4, 12, {&a});
    auto mapper =
        repute::core::make_repute(*reference_, *fm_, tuned.shares);
    const auto result = mapper->map(sim_->batch, 4);
    EXPECT_NEAR(result.mapping_seconds, tuned.predicted_seconds,
                0.5 * tuned.predicted_seconds);
}

TEST_F(TunerTest, SmallBatchClampsTheProbe) {
    // Regression: with batch < probe_reads x devices the fleet used to
    // probe more reads than the batch holds, modeling a fleet that maps
    // the batch several times over. The probe must clamp to a per-device
    // share and still produce usable shares.
    repute::genomics::ReadBatch tiny;
    tiny.read_length = sim_->batch.read_length;
    tiny.reads.assign(sim_->batch.reads.begin(),
                      sim_->batch.reads.begin() + 7);
    Device a(profile("a", 8, 1e9));
    Device b(profile("b", 8, 0.5e9));
    Device c(profile("c", 8, 0.25e9));
    const auto tuned =
        tune_shares(*reference_, *fm_, tiny, 4, 12, {&a, &b, &c});
    ASSERT_EQ(tuned.shares.size(), 3u);
    double total = 0.0;
    for (const auto& share : tuned.shares) {
        EXPECT_GE(share.fraction, 0.0);
        total += share.fraction;
    }
    EXPECT_GT(total, 0.0);
    EXPECT_GT(tuned.shares[0].fraction, tuned.shares[2].fraction);
    EXPECT_GT(tuned.predicted_seconds, 0.0);

    // Extreme case: fewer reads than devices — one read probes each.
    repute::genomics::ReadBatch two;
    two.read_length = sim_->batch.read_length;
    two.reads.assign(sim_->batch.reads.begin(),
                     sim_->batch.reads.begin() + 2);
    EXPECT_NO_THROW(
        (void)tune_shares(*reference_, *fm_, two, 4, 12, {&a, &b, &c}));
}

TEST_F(TunerTest, RejectsDegenerateInputs) {
    Device a(profile("a", 8, 1e9));
    EXPECT_THROW(
        (void)tune_shares(*reference_, *fm_, {}, 4, 12, {&a}),
        std::invalid_argument);
    EXPECT_THROW((void)tune_shares(*reference_, *fm_, sim_->batch, 4, 12,
                                   {nullptr}),
                 std::invalid_argument);
    Device cramped(profile("cramped", 8, 1e9, 64));
    EXPECT_THROW((void)tune_shares(*reference_, *fm_, sim_->batch, 4, 12,
                                   {&cramped}),
                 std::invalid_argument);
}

} // namespace
