// Mixed-length bucketed batching and gzip input, end to end: length
// quantization / virtual-padding properties, the reorder writer that
// restores input order across interleaved class streams, the headline
// oracle — bucketed streaming SAM is byte-identical to splitting the
// input by length class up front — and the gzip layer (transparent .gz
// twins, truncated-vs-corrupt error taxonomy, dual-offset diagnostics,
// paired lockstep across compressed mates, daemon round trips).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/pair_sim.hpp"
#include "genomics/read_sim.hpp"
#include "pipeline/mapping_api.hpp"
#include "pipeline/sam_emitter.hpp"
#include "pipeline/streaming_fastx.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/gzip_stream.hpp"

namespace repute {
namespace {

using pipeline::OnMalformed;
using pipeline::OrderedBatch;
using pipeline::OrderedPairBatch;
using pipeline::PairedStreamingReader;
using pipeline::StreamingFastxReader;
using pipeline::StreamingReaderConfig;

std::string fastq_text(const genomics::ReadBatch& batch) {
    std::string out;
    for (const auto& read : batch.reads) {
        out += '@' + read.name + '\n' + read.to_string() + "\n+\n";
        out += read.quality.empty() ? std::string(read.length(), 'I')
                                    : read.quality;
        out += '\n';
    }
    return out;
}

/// One FASTQ record of length n whose bases cycle ACGT.
std::string record_of(const std::string& name, std::size_t n) {
    static const char bases[] = "ACGT";
    std::string seq;
    for (std::size_t i = 0; i < n; ++i) seq += bases[i % 4];
    return '@' + name + '\n' + seq + "\n+\n" + std::string(n, 'I') + '\n';
}

std::vector<OrderedBatch> drain(StreamingFastxReader& reader) {
    std::vector<OrderedBatch> out;
    OrderedBatch unit;
    while (reader.next_bucket(unit)) out.push_back(unit);
    return out;
}

// ---------------------------------------------------------------------
// Length-class quantization and virtual padding

TEST(BucketReader, QuantizesIntoGridClassesWithVirtualPadding) {
    std::string fastq;
    const std::size_t lengths[] = {5, 16, 17, 30, 32};
    for (std::size_t i = 0; i < 5; ++i) {
        fastq += record_of("r" + std::to_string(i), lengths[i]);
    }
    std::istringstream in(fastq);
    StreamingFastxReader reader(in, {});
    const auto buckets = drain(reader);

    ASSERT_EQ(buckets.size(), 2u); // ceilings 16 and 32
    std::map<std::size_t, const OrderedBatch*> by_ceiling;
    for (const auto& b : buckets) by_ceiling[b.batch.read_length] = &b;
    ASSERT_TRUE(by_ceiling.count(16));
    ASSERT_TRUE(by_ceiling.count(32));

    // batch.read_length is the class ceiling (virtual padding); every
    // read keeps its true length.
    const auto& c16 = *by_ceiling[16];
    ASSERT_EQ(c16.batch.size(), 2u);
    EXPECT_EQ(c16.batch.reads[0].length(), 5u);
    EXPECT_EQ(c16.batch.reads[1].length(), 16u);
    EXPECT_EQ(c16.ordinals, (std::vector<std::uint64_t>{0, 1}));

    const auto& c32 = *by_ceiling[32];
    ASSERT_EQ(c32.batch.size(), 3u);
    EXPECT_EQ(c32.batch.reads[0].length(), 17u);
    EXPECT_EQ(c32.ordinals, (std::vector<std::uint64_t>{2, 3, 4}));
    // Ids are dense within each bucket (batch-local, like to_read_batch).
    for (std::size_t i = 0; i < c32.batch.size(); ++i) {
        EXPECT_EQ(c32.batch.reads[i].id, i);
    }

    EXPECT_EQ(reader.stats().records, 5u);
    EXPECT_EQ(reader.stats().length_classes, 2u);
    // (16-5) + (16-16) + (32-17) + (32-30) + (32-32)
    EXPECT_EQ(reader.stats().pad_bases, 11u + 15u + 2u);
}

TEST(BucketReader, GridOneMeansExactLengthClassesAndZeroPad) {
    std::istringstream in(record_of("a", 21) + record_of("b", 22) +
                          record_of("c", 21));
    StreamingReaderConfig config;
    config.length_grid = 1;
    StreamingFastxReader reader(in, config);
    const auto buckets = drain(reader);
    ASSERT_EQ(buckets.size(), 2u);
    for (const auto& b : buckets) {
        EXPECT_EQ(b.batch.read_length, b.batch.reads[0].length());
    }
    EXPECT_EQ(reader.stats().pad_bases, 0u);
    EXPECT_EQ(reader.stats().length_classes, 2u);
}

TEST(BucketReader, FlushSpanBoundFlushesOldestBucketShort) {
    // Two classes alternate; with batch_size 4 and one deferred batch
    // allowed, the fifth buffered record must force the bucket holding
    // ordinal 0 out (short), before either bucket fills naturally.
    std::string fastq;
    for (int i = 0; i < 8; ++i) {
        fastq += record_of("r" + std::to_string(i), i % 2 ? 48 : 16);
    }
    std::istringstream in(fastq);
    StreamingReaderConfig config;
    config.batch_size = 4;
    config.max_deferred_batches = 1;
    StreamingFastxReader reader(in, config);

    OrderedBatch first;
    ASSERT_TRUE(reader.next_bucket(first));
    EXPECT_LT(first.batch.size(), 4u); // flushed short by the span bound
    EXPECT_EQ(first.ordinals.front(), 0u); // and it held the oldest read

    const auto rest = drain(reader);
    std::size_t total = first.batch.size();
    for (const auto& b : rest) total += b.batch.size();
    EXPECT_EQ(total, 8u); // nothing lost
}

TEST(BucketReader, FixedLengthModeDropsOtherLengths) {
    std::istringstream in(record_of("a", 16) + record_of("b", 20) +
                          record_of("c", 16));
    StreamingReaderConfig config;
    config.read_length = 16;
    StreamingFastxReader reader(in, config);
    const auto buckets = drain(reader);
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].batch.size(), 2u);
    EXPECT_EQ(buckets[0].batch.read_length, 16u);
    EXPECT_EQ(reader.stats().dropped_length, 1u);
    // Ordinals stay dense over *accepted* reads only.
    EXPECT_EQ(buckets[0].ordinals, (std::vector<std::uint64_t>{0, 1}));
}

TEST(BucketReader, MalformedRecordFailsFastWhenConfigured) {
    std::istringstream in(record_of("a", 8) + "@bad\nACGT\n+\nIII\n");
    StreamingReaderConfig config;
    config.on_malformed = OnMalformed::Fail;
    StreamingFastxReader reader(in, config);
    OrderedBatch unit;
    try {
        while (reader.next_bucket(unit)) {
        }
        FAIL() << "expected malformed record to throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("record"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// RecordReorderWriter

TEST(RecordReorderWriter, RestoresInputOrderAcrossOutOfOrderAdds) {
    std::ostringstream out;
    pipeline::RecordReorderWriter writer(out);
    writer.add(2, "c\n");
    writer.add(0, "a\n");
    writer.add(3, "d\n");
    writer.add(1, "b\n");
    writer.finish();
    EXPECT_EQ(out.str(), "a\nb\nc\nd\n");
    EXPECT_GE(writer.max_parked(), 2u); // 2 and 3 waited on 0/1
}

TEST(RecordReorderWriter, FinishThrowsOnOrdinalGap) {
    std::ostringstream out;
    pipeline::RecordReorderWriter writer(out);
    writer.add(0, "a\n");
    writer.add(2, "c\n"); // ordinal 1 never arrives
    EXPECT_THROW(writer.finish(), std::logic_error);
}

// ---------------------------------------------------------------------
// The oracle: bucketed mixed-length mapping == per-length split

/// Shared mapping fixture: one genome, three read-length classes
/// interleaved round-robin into a single FASTQ, with names that encode
/// the global input ordinal ("mix.<ordinal>").
class MixedOracleTest : public ::testing::Test {
protected:
    void SetUp() override {
        genomics::GenomeSimConfig gconfig;
        gconfig.length = 25'000;
        gconfig.seed = 23;
        genomics::Reference genome = genomics::simulate_genome(gconfig);

        const std::size_t lengths[] = {72, 100, 131}; // ceilings 80/112/144
        for (std::size_t c = 0; c < 3; ++c) {
            genomics::ReadSimConfig rconfig;
            rconfig.n_reads = 50;
            rconfig.read_length = lengths[c];
            rconfig.max_errors = 3;
            rconfig.seed = 1000 + c;
            classes_[c] = genomics::simulate_reads(genome, rconfig).batch;
        }
        // Interleave round-robin; rename so every read carries its
        // global input ordinal (simulated names collide across classes).
        std::uint64_t ordinal = 0;
        for (std::size_t i = 0; i < 50; ++i) {
            for (std::size_t c = 0; c < 3; ++c) {
                auto& read = classes_[c].reads[i];
                read.name = "mix." + std::to_string(ordinal++);
                genomics::ReadBatch one;
                one.read_length = read.length();
                one.reads.push_back(read);
                mixed_fastq_ += fastq_text(one);
            }
        }

        pipeline::SessionConfig sconfig;
        sconfig.mapper_pool = 2;
        session_ = pipeline::MappingSession::from_multi(
            genomics::MultiReference(std::move(genome)), sconfig);
    }

    std::string map_streaming(const std::string& fastq,
                              std::size_t batch_size) {
        std::istringstream reads(fastq);
        pipeline::MapRequest request;
        request.reads = &reads;
        request.delta = 3;
        request.map_workers = 2;
        request.reader.batch_size = batch_size;
        std::ostringstream sam;
        session_->map(request, sam);
        return sam.str();
    }

    std::string map_monolithic(const genomics::ReadBatch& batch) {
        std::istringstream reads(fastq_text(batch));
        pipeline::MapRequest request;
        request.reads = &reads;
        request.delta = 3;
        request.monolithic = true;
        std::ostringstream sam;
        session_->map(request, sam);
        return sam.str();
    }

    static void split_sam(const std::string& sam, std::string& header,
                          std::vector<std::string>& records) {
        std::istringstream in(sam);
        std::string line;
        while (std::getline(in, line)) {
            if (!line.empty() && line[0] == '@') {
                header += line + '\n';
            } else if (!line.empty()) {
                records.push_back(line + '\n');
            }
        }
    }

    genomics::ReadBatch classes_[3];
    std::string mixed_fastq_;
    std::unique_ptr<pipeline::MappingSession> session_;
};

TEST_F(MixedOracleTest, BucketedStreamingMatchesPerLengthSplitOracle) {
    // Small batches force many interleaved buckets plus span flushes.
    const std::string streamed = map_streaming(mixed_fastq_, 16);

    // Oracle: map each uniform class monolithically, then re-merge the
    // records in global input order (the ordinal is in the qname).
    std::string oracle_header;
    std::map<std::string, std::string> by_qname;
    for (const auto& batch : classes_) {
        std::string header;
        std::vector<std::string> records;
        split_sam(map_monolithic(batch), header, records);
        if (oracle_header.empty()) oracle_header = header;
        EXPECT_EQ(header, oracle_header);
        for (const auto& line : records) {
            by_qname[line.substr(0, line.find('\t'))] += line;
        }
    }
    std::string expected = oracle_header;
    for (std::uint64_t i = 0; i < 150; ++i) {
        expected += by_qname["mix." + std::to_string(i)];
    }
    EXPECT_EQ(streamed, expected);
}

TEST_F(MixedOracleTest, BatchSizeDoesNotChangeBucketedOutput) {
    EXPECT_EQ(map_streaming(mixed_fastq_, 16),
              map_streaming(mixed_fastq_, 4096));
}

TEST_F(MixedOracleTest, GzInputIsByteIdenticalToPlainTwin) {
    if (!util::zlib_enabled()) {
        GTEST_SKIP() << "built with -DREPUTE_ZLIB=OFF";
    }
    const std::string gz = util::gzip_compress(mixed_fastq_);
    EXPECT_EQ(map_streaming(gz, 64), map_streaming(mixed_fastq_, 64));
}

// ---------------------------------------------------------------------
// Gzip error taxonomy and diagnostics

TEST(Gzip, TruncatedAndCorruptStreamsThrowDistinctErrors) {
    if (!util::zlib_enabled()) {
        GTEST_SKIP() << "built with -DREPUTE_ZLIB=OFF";
    }
    // String (not literal) prefix: concatenating a literal inside the
    // inlined loop trips GCC 12's -Wrestrict false positive.
    static const std::string kPrefix = "r";
    std::string fastq;
    for (int i = 0; i < 64; ++i) {
        fastq += record_of(kPrefix + std::to_string(i), 40);
    }
    const std::string gz = util::gzip_compress(fastq);

    // Drains to End, skipping Malformed records: corrupt deflate data
    // first surfaces as garbage (malformed) records, and the decode
    // error itself only throws once the scanner reads past them.
    const auto drain_records = [](const std::string& bytes) {
        std::istringstream in(bytes);
        genomics::FastxRecordStream stream(in);
        genomics::FastqRecord rec;
        while (stream.next(rec) !=
               genomics::FastxRecordStream::Status::End) {
        }
    };

    try { // input ends mid-member: a partial download
        drain_records(gz.substr(0, gz.size() - 12));
        FAIL() << "expected truncated gzip to throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }

    try { // flipped trailer CRC: bit rot, deterministically detected
        std::string corrupt = gz;
        for (std::size_t i = gz.size() - 8; i < gz.size() - 4; ++i) {
            corrupt[i] = static_cast<char>(~corrupt[i]);
        }
        drain_records(corrupt);
        FAIL() << "expected corrupt gzip to throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("corrupt"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Gzip, MultiMemberConcatenationInflatesSeamlessly) {
    if (!util::zlib_enabled()) {
        GTEST_SKIP() << "built with -DREPUTE_ZLIB=OFF";
    }
    const std::string gz = util::gzip_compress(record_of("a", 10)) +
                           util::gzip_compress(record_of("b", 20));
    std::istringstream in(gz);
    genomics::FastxRecordStream stream(in);
    genomics::FastqRecord rec;
    ASSERT_EQ(stream.next(rec), genomics::FastxRecordStream::Status::Record);
    EXPECT_EQ(rec.name, "a");
    ASSERT_EQ(stream.next(rec), genomics::FastxRecordStream::Status::Record);
    EXPECT_EQ(rec.name, "b");
    EXPECT_EQ(stream.next(rec), genomics::FastxRecordStream::Status::End);
}

TEST(Gzip, MalformedRecordReportsBothOffsets) {
    // Record "b" (quality shorter than sequence) starts at uncompressed
    // byte 15 — right after "@a\nACGT\n+\nIIII\n".
    const std::string plain = "@a\nACGT\n+\nIIII\n@b\nACGT\n+\nIII\n";

    const auto error_of = [](std::istream& in) -> std::string {
        genomics::FastxRecordStream stream(in);
        genomics::FastqRecord rec;
        std::string error;
        while (true) {
            const auto status = stream.next(rec, &error);
            if (status == genomics::FastxRecordStream::Status::Malformed) {
                return error;
            }
            if (status == genomics::FastxRecordStream::Status::End) {
                return {};
            }
        }
    };

    std::istringstream plain_in(plain);
    const std::string plain_error = error_of(plain_in);
    EXPECT_NE(plain_error.find("(at byte 15"), std::string::npos)
        << plain_error;

    if (!util::zlib_enabled()) return;
    std::istringstream gz_in(util::gzip_compress(plain));
    const std::string gz_error = error_of(gz_in);
    EXPECT_NE(gz_error.find("uncompressed byte 15"), std::string::npos)
        << gz_error;
    EXPECT_NE(gz_error.find("compressed byte"), std::string::npos)
        << gz_error;
}

TEST(Gzip, DisabledBuildRefusesCompressedInputLoudly) {
    if (util::zlib_enabled()) {
        GTEST_SKIP() << "this build carries zlib";
    }
    std::istringstream in("\x1f\x8b\x08rest-does-not-matter");
    try {
        genomics::FastxRecordStream stream(in);
        FAIL() << "expected a clear no-zlib error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("without zlib"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// Paired lockstep across compressed mates

TEST(PairedBuckets, DesynchronizedMateFilesThrow) {
    const std::string mate1 =
        record_of("p0", 30) + record_of("p1", 30) + record_of("p2", 30);
    std::string mate2 = record_of("p0", 30) + record_of("p1", 30);
    if (util::zlib_enabled()) mate2 = util::gzip_compress(mate2);

    std::istringstream in1(mate1), in2(mate2);
    PairedStreamingReader reader(in1, in2, {});
    OrderedPairBatch unit;
    try {
        while (reader.next_bucket(unit)) {
        }
        FAIL() << "expected desynchronized mates to throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("desynchronized"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PairedBuckets, MalformedRecordDropsTheWholePair) {
    // Mate 1's middle record is malformed; the pair drops as a unit so
    // the surviving slots stay name-synchronized.
    const std::string mate1 = record_of("p0", 24) +
                              "@bad\nACGT\n+\nIII\n" +
                              record_of("p2", 24);
    const std::string mate2 =
        record_of("p0", 24) + record_of("p1", 24) + record_of("p2", 24);
    std::istringstream in1(mate1), in2(mate2);
    PairedStreamingReader reader(in1, in2, {});
    std::vector<OrderedPairBatch> buckets;
    OrderedPairBatch unit;
    while (reader.next_bucket(unit)) buckets.push_back(unit);
    ASSERT_EQ(buckets.size(), 1u);
    ASSERT_EQ(buckets[0].first.size(), 2u);
    EXPECT_EQ(reader.stats().dropped_malformed, 1u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(buckets[0].first.reads[i].name,
                  buckets[0].second.reads[i].name);
    }
}

TEST(PairedBuckets, PerPairLengthTupleKeepsBucketsUniform) {
    // Pairs (30,60), (60,30), (30,60): two distinct tuple classes.
    std::string mate1 = record_of("p0", 30) + record_of("p1", 60) +
                        record_of("p2", 30);
    std::string mate2 = record_of("p0", 60) + record_of("p1", 30) +
                        record_of("p2", 60);
    std::istringstream in1(mate1), in2(mate2);
    PairedStreamingReader reader(in1, in2, {});
    std::vector<OrderedPairBatch> buckets;
    OrderedPairBatch unit;
    while (reader.next_bucket(unit)) buckets.push_back(unit);
    ASSERT_EQ(buckets.size(), 2u);
    for (const auto& b : buckets) {
        ASSERT_EQ(b.first.size(), b.second.size());
        for (const auto& read : b.first.reads) {
            EXPECT_EQ(read.length(), b.first.reads[0].length());
        }
    }
    EXPECT_EQ(reader.stats().records, 3u); // pairs, not reads
}

// ---------------------------------------------------------------------
// Wire protocol: trailing length_grid extension

TEST(Protocol, LengthGridRoundTripsAndDefaultsWhenAbsent) {
    serve::WireRequest request;
    request.reads = "@r\nACGT\n+\nIIII\n";
    request.length_grid = 4;
    const std::string payload = serve::encode_request(request);
    EXPECT_EQ(serve::decode_request(payload).length_grid, 4u);

    // An old client's payload simply ends after the blobs: the decoder
    // defaults the grid instead of rejecting the request.
    const std::string old_payload =
        payload.substr(0, payload.size() - sizeof(std::uint32_t));
    EXPECT_EQ(serve::decode_request(old_payload).length_grid, 16u);

    // Stray bytes that are not a whole trailing field still fail loudly.
    EXPECT_THROW(serve::decode_request(payload + "xyz"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Daemon round trip with heterogeneous read lengths

TEST(ServeMixed, SocketAndOneShotAgreeOnHeterogeneousLengths) {
    genomics::GenomeSimConfig gconfig;
    gconfig.length = 20'000;
    gconfig.seed = 31;
    genomics::Reference genome = genomics::simulate_genome(gconfig);

    std::string fastq;
    for (std::size_t c = 0; c < 2; ++c) {
        genomics::ReadSimConfig rconfig;
        rconfig.n_reads = 40;
        rconfig.read_length = c == 0 ? 60 : 90;
        rconfig.max_errors = 2;
        rconfig.seed = 700 + c;
        auto batch = genomics::simulate_reads(genome, rconfig).batch;
        for (std::size_t i = 0; i < batch.reads.size(); ++i) {
            batch.reads[i].name =
                "het." + std::to_string(c) + "." + std::to_string(i);
        }
        fastq += fastq_text(batch);
    }

    pipeline::SessionConfig sconfig;
    sconfig.mapper_pool = 2;
    auto session = pipeline::MappingSession::from_multi(
        genomics::MultiReference(std::move(genome)), sconfig);

    serve::ServerConfig server_config;
    server_config.socket_path =
        testing::TempDir() + "repute_test_mixed.sock";
    server_config.handlers = 2;
    serve::Server server(*session, server_config);
    std::thread server_thread([&] { server.run(); });

    serve::WireRequest wire;
    wire.delta = 3;
    wire.reads = fastq; // read_length stays 0: bucketed mixed-length
    if (util::zlib_enabled()) wire.reads = util::gzip_compress(fastq);

    std::ostringstream socket_sam;
    try {
        serve::run_client(server_config.socket_path, wire, socket_sam);
    } catch (...) {
        server.stop();
        server_thread.join();
        throw;
    }
    server.stop();
    server_thread.join();

    // The same wire request mapped one-shot through the session.
    std::istringstream reads(wire.reads);
    pipeline::MapRequest request;
    request.reads = &reads;
    request.delta = wire.delta;
    request.reader.read_length = wire.read_length;
    request.reader.length_grid = wire.length_grid;
    std::ostringstream sam;
    session->map(request, sam);
    EXPECT_EQ(socket_sam.str(), sam.str());
}

} // namespace
} // namespace repute
