// Transfer model and double-buffered staging: TransferSpec arithmetic,
// the per-direction DMA clocks, buffer/device byte accounting, event
// wait-list vs reuse-list semantics, and the staging equivalence matrix
// (double buffering on/off x static/dynamic x fault injection) — output
// must be byte-identical no matter how transfers are modeled or
// overlapped. This binary also runs under ThreadSanitizer (ci.sh tsan):
// the staging paths chain events across the scheduler's worker threads.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/repute_mapper.hpp"
#include "core/tuner.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "ocl/context.hpp"
#include "ocl/device.hpp"
#include "ocl/queue.hpp"

namespace {

using repute::core::DeviceShare;
using repute::core::HeterogeneousMapperConfig;
using repute::core::make_repute;
using repute::core::MapResult;
using repute::core::ScheduleMode;
using repute::core::tune_shares;
using repute::core::TuneConfig;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::SimulatedReads;
using repute::index::FmIndex;
using repute::ocl::Buffer;
using repute::ocl::CommandQueue;
using repute::ocl::Context;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;
using repute::ocl::Event;
using repute::ocl::FaultPlan;
using repute::ocl::KernelLaunch;
using repute::ocl::OclError;
using repute::ocl::TransferSpec;

DeviceProfile test_profile(std::uint32_t units = 4,
                           double ops_per_unit = 1e6) {
    DeviceProfile p;
    p.name = "xfer-dev";
    p.compute_units = units;
    p.ops_per_unit_per_second = ops_per_unit;
    p.global_memory_bytes = 1 << 20; // 1 MiB
    p.private_memory_per_unit = 4096;
    p.min_resident_items = 1;
    p.dispatch_overhead_seconds = 0.0;
    return p;
}

TransferSpec spec_of(double bytes_per_second, double latency_seconds) {
    TransferSpec spec;
    spec.bytes_per_second = bytes_per_second;
    spec.latency_seconds = latency_seconds;
    return spec;
}

KernelLaunch noop_kernel(std::uint64_t ops = 1000) {
    KernelLaunch launch;
    launch.name = "noop";
    launch.n_items = 1;
    launch.body = [ops](std::size_t) { return ops; };
    return launch;
}

// ---------------------------------------------------------- TransferSpec

TEST(TransferSpec, UnmodeledByDefault) {
    const TransferSpec spec;
    EXPECT_FALSE(spec.modeled());
    EXPECT_EQ(spec.seconds_for(0), 0.0);
    EXPECT_EQ(spec.seconds_for(1'000'000'000), 0.0);
}

TEST(TransferSpec, SecondsForIsLatencyPlusBytesOverBandwidth) {
    const TransferSpec spec = spec_of(1e6, 1e-3);
    EXPECT_TRUE(spec.modeled());
    EXPECT_NEAR(spec.seconds_for(2000), 1e-3 + 2e-3, 1e-12);
    // Latency-only link: fixed cost per transfer, no per-byte term.
    const TransferSpec latency_only = spec_of(0.0, 5e-6);
    EXPECT_TRUE(latency_only.modeled());
    EXPECT_NEAR(latency_only.seconds_for(1 << 20), 5e-6, 1e-12);
}

// -------------------------------------------------- Device DMA channels

TEST(DeviceTransfer, ChannelsAreFullDuplexAndSerializePerDirection) {
    Device dev(test_profile());
    dev.set_transfer_spec(spec_of(1e6, 0.0)); // 1 MB/s
    const auto h2d = dev.transfer(1'000'000, true);
    EXPECT_NEAR(h2d.start_seconds, 0.0, 1e-12);
    EXPECT_NEAR(h2d.seconds, 1.0, 1e-12);
    // Opposite direction is an independent channel: starts at 0 even
    // though the h2d channel is busy until t=1.
    const auto d2h = dev.transfer(500'000, false);
    EXPECT_NEAR(d2h.start_seconds, 0.0, 1e-12);
    EXPECT_NEAR(d2h.seconds, 0.5, 1e-12);
    // Same direction serializes behind the channel frontier.
    const auto h2d2 = dev.transfer(1'000'000, true);
    EXPECT_NEAR(h2d2.start_seconds, 1.0, 1e-12);
    // DMA time is not compute time.
    EXPECT_EQ(dev.busy_seconds(), 0.0);
}

TEST(DeviceTransfer, ReadySecondsDelaysStartAndReportsQueueWait) {
    Device dev(test_profile());
    dev.set_transfer_spec(spec_of(1e6, 0.0));
    const auto stats = dev.transfer(1000, true, 5.0);
    EXPECT_NEAR(stats.start_seconds, 5.0, 1e-12);
    EXPECT_NEAR(stats.queue_wait_seconds, 5.0, 1e-12);
}

TEST(DeviceTransfer, StatsAccumulateAndResetClearsClocks) {
    Device dev(test_profile());
    dev.set_transfer_spec(spec_of(2e6, 1e-4));
    dev.transfer(4000, true);
    dev.transfer(4000, true);
    dev.transfer(1000, false);
    const auto stats = dev.transfer_stats();
    EXPECT_EQ(stats.bytes_written, 8000u);
    EXPECT_EQ(stats.bytes_read, 1000u);
    EXPECT_EQ(stats.writes, 2u);
    EXPECT_EQ(stats.reads, 1u);
    EXPECT_NEAR(stats.write_seconds, 2 * (1e-4 + 4000 / 2e6), 1e-12);
    EXPECT_NEAR(stats.read_seconds, 1e-4 + 1000 / 2e6, 1e-12);
    dev.reset_busy_time();
    const auto cleared = dev.transfer_stats();
    EXPECT_EQ(cleared.bytes_written, 0u);
    EXPECT_EQ(cleared.writes, 0u);
    EXPECT_EQ(cleared.write_seconds, 0.0);
    // Channel frontiers were reset too: a new transfer starts at 0.
    EXPECT_NEAR(dev.transfer(1, true).start_seconds, 0.0, 1e-12);
}

TEST(DeviceTransfer, UnmodeledTransfersCountBytesButNoTime) {
    Device dev(test_profile());
    dev.transfer(12345, true);
    const auto stats = dev.transfer_stats();
    EXPECT_EQ(stats.bytes_written, 12345u);
    EXPECT_EQ(stats.write_seconds, 0.0);
}

TEST(DeviceTransfer, BypassesFaultInjection) {
    Device dev(test_profile());
    FaultPlan plan;
    plan.fail_on_launch = 1;
    plan.fail_forever = true;
    dev.inject_faults(plan);
    // Transfers model clEnqueueWriteBuffer, not kernel dispatch: the
    // fault plan must not fire on them (and must not consume ordinals).
    EXPECT_NO_THROW(dev.transfer(1000, true));
    EXPECT_THROW(
        dev.execute(1, [](std::size_t) { return std::uint64_t{1}; }, 0),
        OclError);
    dev.clear_faults();
}

TEST(DeviceTransfer, QueueWaitIsNotBusyTimeSoUtilizationIsBounded) {
    Device dev(test_profile(4, 1e6));
    const auto first = dev.execute(
        100, [](std::size_t) { return std::uint64_t{400}; }, 0);
    // Inputs only ready at t=10: the launch stalls, and the stall must
    // land in queue_wait_seconds — not in busy_seconds — or utilization
    // (busy / elapsed) would exceed 100%.
    const auto second = dev.execute(
        100, [](std::size_t) { return std::uint64_t{400}; }, 0, 10.0);
    EXPECT_NEAR(second.start_seconds, 10.0, 1e-9);
    EXPECT_NEAR(second.queue_wait_seconds, 10.0 - first.seconds, 1e-9);
    EXPECT_NEAR(dev.busy_seconds(), first.seconds + second.seconds, 1e-9);
    const double elapsed = second.start_seconds + second.seconds;
    EXPECT_LE(dev.busy_seconds() / elapsed, 1.0);
}

// ------------------------------------------------------ Queue transfers

TEST(QueueTransfer, BufferAndDeviceCountersAdvance) {
    Device dev(test_profile());
    dev.set_transfer_spec(spec_of(1e6, 0.0));
    Context context({&dev});
    Buffer buffer = context.allocate(dev, 8192, "reads");
    CommandQueue queue(dev);
    const auto write = queue.enqueue_write(buffer, 8192).wait();
    EXPECT_NEAR(write.seconds, 8192 / 1e6, 1e-12);
    queue.enqueue_read(buffer, 100).wait();
    EXPECT_EQ(buffer.bytes_written(), 8192u);
    EXPECT_EQ(buffer.bytes_read(), 100u);
    const auto stats = dev.transfer_stats();
    EXPECT_EQ(stats.bytes_written, 8192u);
    EXPECT_EQ(stats.bytes_read, 100u);
}

TEST(QueueTransfer, ValidatesBufferAndSize) {
    Device dev(test_profile());
    Context context({&dev});
    Buffer buffer = context.allocate(dev, 1024, "small");
    CommandQueue queue(dev);
    EXPECT_THROW(queue.enqueue_write(buffer, 1025),
                 std::invalid_argument);
    Buffer released = context.allocate(dev, 64, "released");
    released.release();
    EXPECT_THROW(queue.enqueue_write(released, 1),
                 std::invalid_argument);
}

TEST(QueueTransfer, FailedHardDepPropagatesFailedReuseDepDoesNot) {
    Device dev(test_profile());
    dev.set_transfer_spec(spec_of(1e6, 0.0));
    Context context({&dev});
    Buffer buffer = context.allocate(dev, 4096, "chunk");
    CommandQueue queue(dev);

    FaultPlan plan;
    plan.fail_on_launch = 1;
    dev.inject_faults(plan);
    Event failed = queue.enqueue(noop_kernel());
    EXPECT_THROW(failed.wait(), OclError);
    dev.clear_faults();

    // Reuse-list semantics: "this kernel's buffer is free again". The
    // failed launch never touched the buffer, so staging over it must
    // succeed — a fault must not cascade through every later stage.
    Event restage = queue.enqueue_write(buffer, 4096, {}, {failed});
    EXPECT_NO_THROW(restage.wait());

    // Wait-list semantics: a hard dependency ("my input was staged by
    // that event") propagates the failure.
    Event hard = queue.enqueue_write(buffer, 4096, {failed}, {});
    EXPECT_THROW(hard.wait(), OclError);
    EXPECT_EQ(buffer.bytes_written(), 4096u); // only the reuse write ran
}

TEST(QueueTransfer, KernelWaitsOnStagedInputOnModeledClock) {
    Device dev(test_profile(4, 1e6));
    dev.set_transfer_spec(spec_of(1e4, 0.0)); // slow: 10 KB/s
    Context context({&dev});
    Buffer buffer = context.allocate(dev, 10'000, "reads");
    CommandQueue queue(dev);
    Event write = queue.enqueue_write(buffer, 10'000); // 1 s of DMA
    const auto stats =
        queue.enqueue(noop_kernel(), {write}).wait();
    EXPECT_NEAR(stats.start_seconds, 1.0, 1e-9);
    EXPECT_NEAR(stats.queue_wait_seconds, 1.0, 1e-9);
    EXPECT_LT(dev.busy_seconds(), 1.0); // the stall is not busy time
}

// ------------------------------------------- Staging equivalence matrix

class XferMapTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 100'000;
        gconfig.seed = 67;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);
        ReadSimConfig rconfig;
        rconfig.n_reads = 240;
        rconfig.read_length = 100;
        rconfig.max_errors = 4;
        sim_ = new SimulatedReads(simulate_reads(*reference_, rconfig));
    }
    static void TearDownTestSuite() {
        delete sim_;
        delete fm_;
        delete reference_;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    static DeviceProfile mapper_profile(std::uint32_t units,
                                        const char* name) {
        DeviceProfile p;
        p.name = name;
        p.compute_units = units;
        p.ops_per_unit_per_second = 1e9;
        p.global_memory_bytes = 1ULL << 30;
        p.private_memory_per_unit = 1 << 20;
        p.dispatch_overhead_seconds = 0.0;
        return p;
    }

    /// Profile sized so the static path must cut each device's slice
    /// into several chunks (exercising buffer-set rotation): global
    /// memory is four residents, so the quarter-of-RAM ceiling equals
    /// the resident image and the output-buffer cap forces chunking.
    static DeviceProfile tight_profile(std::uint32_t units,
                                       const char* name) {
        DeviceProfile p = mapper_profile(units, name);
        const std::uint64_t resident =
            reference_->sequence().memory_bytes() + fm_->memory_bytes();
        p.global_memory_bytes = 4 * resident;
        return p;
    }

    static void expect_identical(const MapResult& a, const MapResult& b) {
        ASSERT_EQ(a.per_read.size(), b.per_read.size());
        for (std::size_t i = 0; i < a.per_read.size(); ++i) {
            ASSERT_EQ(a.per_read[i], b.per_read[i]) << "read " << i;
        }
    }

    static MapResult reference_result() {
        Device dev(mapper_profile(8, "ref"));
        HeterogeneousMapperConfig config;
        config.kernel.s_min = 14;
        auto mapper =
            make_repute(*reference_, *fm_, {{&dev, 1.0}}, config);
        return mapper->map(sim_->batch, 4);
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedReads* sim_;
};

Reference* XferMapTest::reference_ = nullptr;
FmIndex* XferMapTest::fm_ = nullptr;
SimulatedReads* XferMapTest::sim_ = nullptr;

TEST_F(XferMapTest, StagingEquivalenceMatrix) {
    const MapResult expected = reference_result();
    for (const ScheduleMode mode :
         {ScheduleMode::StaticSplit, ScheduleMode::Dynamic}) {
        for (const bool double_buffer : {true, false}) {
            // Asymmetric fleet, asymmetric links: the output must not
            // depend on who staged what when.
            Device fast(tight_profile(8, "fleet-fast"));
            Device slow(tight_profile(2, "fleet-slow"));
            fast.set_transfer_spec(spec_of(50e6, 1e-6));
            slow.set_transfer_spec(spec_of(10e6, 5e-6));
            HeterogeneousMapperConfig config;
            config.kernel.s_min = 14;
            config.schedule = mode;
            config.scheduler.chunk_items = 64;
            config.double_buffer = double_buffer;
            auto mapper = make_repute(
                *reference_, *fm_, {{&fast, 0.7}, {&slow, 0.3}}, config);
            const MapResult result = mapper->map(sim_->batch, 4);
            SCOPED_TRACE(testing::Message()
                         << "mode="
                         << (mode == ScheduleMode::Dynamic ? "dynamic"
                                                           : "static")
                         << " double_buffer=" << double_buffer);
            expect_identical(expected, result);
            EXPECT_GT(result.bytes_staged(), 0u);
            EXPECT_GT(result.bytes_drained(), 0u);
            const double overlap = result.transfer_overlap_ratio();
            EXPECT_GE(overlap, 0.0);
            EXPECT_LE(overlap, 1.0);
            double transfer_seconds = 0.0;
            for (const auto& run : result.device_runs) {
                transfer_seconds += run.transfer_seconds;
            }
            EXPECT_GT(transfer_seconds, 0.0);
        }
    }
}

TEST_F(XferMapTest, FaultMidStageKeepsOutputIdentical) {
    const MapResult expected = reference_result();
    for (const bool double_buffer : {true, false}) {
        Device healthy(tight_profile(8, "fleet-healthy"));
        Device flaky(tight_profile(4, "fleet-flaky"));
        healthy.set_transfer_spec(spec_of(50e6, 1e-6));
        flaky.set_transfer_spec(spec_of(50e6, 1e-6));
        // The flaky device dies on its second launch and stays dead:
        // its staged chunks must be retried elsewhere with no trace in
        // the merged output, staged or not.
        FaultPlan plan;
        plan.fail_on_launch = 2;
        plan.fail_forever = true;
        flaky.inject_faults(plan);
        HeterogeneousMapperConfig config;
        config.kernel.s_min = 14;
        config.schedule = ScheduleMode::Dynamic;
        config.scheduler.chunk_items = 32;
        config.double_buffer = double_buffer;
        auto mapper = make_repute(
            *reference_, *fm_, {{&healthy, 0.5}, {&flaky, 0.5}}, config);
        const MapResult result = mapper->map(sim_->batch, 4);
        flaky.clear_faults();
        SCOPED_TRACE(testing::Message()
                     << "double_buffer=" << double_buffer);
        expect_identical(expected, result);
        ASSERT_TRUE(result.schedule.has_value());
        EXPECT_GE(result.schedule->retries, 1u);
        const double overlap = result.transfer_overlap_ratio();
        EXPECT_GE(overlap, 0.0);
        EXPECT_LE(overlap, 1.0);
    }
}

TEST_F(XferMapTest, DoubleBufferingNeverSlowsModeledTime) {
    // Transfer-bound single device: staging a 64-read chunk costs about
    // as much as computing it, the regime double buffering targets.
    const auto run = [&](bool double_buffer) {
        Device dev(mapper_profile(8, "overlap"));
        dev.set_transfer_spec(spec_of(2e6, 0.0));
        HeterogeneousMapperConfig config;
        config.kernel.s_min = 14;
        config.schedule = ScheduleMode::Dynamic;
        config.scheduler.chunk_items = 64;
        config.double_buffer = double_buffer;
        auto mapper =
            make_repute(*reference_, *fm_, {{&dev, 1.0}}, config);
        return mapper->map(sim_->batch, 4);
    };
    const MapResult serialized = run(false);
    const MapResult doubled = run(true);
    expect_identical(serialized, doubled);
    EXPECT_LE(doubled.mapping_seconds,
              serialized.mapping_seconds + 1e-9);
    EXPECT_GE(doubled.transfer_overlap_ratio(),
              serialized.transfer_overlap_ratio());
}

// ------------------------------------------------------ Tuner and trace

TEST_F(XferMapTest, TunerFoldsTransferCostIntoShares) {
    Device fast_link(mapper_profile(4, "tune-fast"));
    Device slow_link(mapper_profile(4, "tune-slow"));
    // Identical compute, but one device pays a heavy modeled staging
    // cost per read: the tuner must shift work off it.
    slow_link.set_transfer_spec(spec_of(1e5, 0.0));
    const auto tuned =
        tune_shares(*reference_, *fm_, sim_->batch, 4, 14,
                    {&fast_link, &slow_link});
    ASSERT_EQ(tuned.shares.size(), 2u);
    EXPECT_GT(tuned.shares[0].fraction, tuned.shares[1].fraction);
    ASSERT_EQ(tuned.reads_per_second.size(), 2u);
    EXPECT_GT(tuned.reads_per_second[0], tuned.reads_per_second[1]);

    // Serialized staging costs stage+compute+drain instead of their
    // max: the same modeled device rates lower without double buffering.
    TuneConfig serialized;
    serialized.double_buffer = false;
    const auto tuned_serialized =
        tune_shares(*reference_, *fm_, sim_->batch, 4, 14,
                    {&fast_link, &slow_link}, serialized);
    EXPECT_LT(tuned_serialized.reads_per_second[1],
              tuned.reads_per_second[1]);
}

TEST_F(XferMapTest, XferMetricsLandInTraceRegistry) {
    repute::obs::TraceSession session;
    Device dev(mapper_profile(8, "traced"));
    dev.set_transfer_spec(spec_of(50e6, 1e-6));
    HeterogeneousMapperConfig config;
    config.kernel.s_min = 14;
    auto mapper = make_repute(*reference_, *fm_, {{&dev, 1.0}}, config);
    const MapResult result = mapper->map(sim_->batch, 4);

    const auto counters = session.registry().counter_values();
    ASSERT_TRUE(counters.count("xfer.bytes_written"));
    ASSERT_TRUE(counters.count("xfer.bytes_read"));
    EXPECT_EQ(counters.at("xfer.bytes_written"), result.bytes_staged());
    EXPECT_EQ(counters.at("xfer.bytes_read"), result.bytes_drained());
    const auto gauges = session.registry().gauge_values();
    ASSERT_TRUE(gauges.count("xfer.overlap_ratio"));
    EXPECT_GE(gauges.at("xfer.overlap_ratio"), 0.0);
    EXPECT_LE(gauges.at("xfer.overlap_ratio"), 1.0);

    const std::string summary =
        repute::obs::xfer_summary(session.registry());
    EXPECT_NE(summary.find("bytes"), std::string::npos);
    EXPECT_NE(summary.find("overlap"), std::string::npos);
}

} // namespace
