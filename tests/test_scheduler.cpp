// Dynamic work-stealing scheduler: chunk planning, stealing, fault
// injection (mid-batch death, persistent failure → quarantine, all
// devices dead → clean OclError, transient faults → bounded retries),
// and mapper-level equivalence of dynamic scheduling with the static
// single-device reference.

#include <gtest/gtest.h>

#include <atomic>

#include "core/repute_mapper.hpp"
#include "core/scheduler.hpp"
#include "core/tuner.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"

namespace {

using repute::core::ChunkRecord;
using repute::core::ChunkScheduler;
using repute::core::HeterogeneousMapperConfig;
using repute::core::MapResult;
using repute::core::ScheduleMode;
using repute::core::SchedulerConfig;
using repute::core::ScheduleStats;
using repute::genomics::GenomeSimConfig;
using repute::genomics::ReadSimConfig;
using repute::genomics::Reference;
using repute::genomics::simulate_genome;
using repute::genomics::simulate_reads;
using repute::genomics::SimulatedReads;
using repute::index::FmIndex;
using repute::ocl::Device;
using repute::ocl::DeviceProfile;
using repute::ocl::FaultPlan;
using repute::ocl::LaunchStats;
using repute::ocl::OclError;
using repute::ocl::OclStatus;

DeviceProfile profile(const char* name, std::uint32_t units,
                      double ops_per_unit) {
    DeviceProfile p;
    p.name = name;
    p.compute_units = units;
    p.ops_per_unit_per_second = ops_per_unit;
    p.global_memory_bytes = 1ULL << 30;
    p.private_memory_per_unit = 1 << 20;
    p.dispatch_overhead_seconds = 1e-4;
    return p;
}

/// Runner that executes a fixed-cost body on the device and marks every
/// completed item, so coverage and exactly-once semantics are checkable.
struct CountingRunner {
    std::vector<std::atomic<std::uint32_t>> covered;

    explicit CountingRunner(std::size_t total) : covered(total) {}

    ChunkScheduler::ChunkRunner runner() {
        return [this](Device& device, std::size_t begin,
                      std::size_t count) -> LaunchStats {
            return device.execute(
                count,
                [this, begin](std::size_t i) {
                    covered[begin + i].fetch_add(1);
                    return std::uint64_t{1000};
                },
                64);
        };
    }

    void expect_each_item_once() const {
        for (std::size_t i = 0; i < covered.size(); ++i) {
            EXPECT_EQ(covered[i].load(), 1u) << "item " << i;
        }
    }
};

// ------------------------------------------------------------- planning

TEST(ChunkPlan, PartitionsTheBatchExactly) {
    Device a(profile("a", 4, 1e6)), b(profile("b", 4, 1e6));
    SchedulerConfig config;
    ChunkScheduler scheduler({&a, &b}, {0.7, 0.3}, config);
    const auto chunks = scheduler.plan(10'000);
    ASSERT_FALSE(chunks.empty());
    std::size_t expect_begin = 0;
    for (const ChunkRecord& c : chunks) {
        EXPECT_EQ(c.begin, expect_begin);
        EXPECT_GT(c.count, 0u);
        expect_begin += c.count;
    }
    EXPECT_EQ(expect_begin, 10'000u);
}

TEST(ChunkPlan, HonoursFixedChunkSizeAndCap) {
    Device a(profile("a", 4, 1e6));
    SchedulerConfig config;
    config.chunk_items = 128;
    ChunkScheduler scheduler({&a}, {}, config);
    for (const ChunkRecord& c : scheduler.plan(1000)) {
        EXPECT_LE(c.count, 128u);
    }

    SchedulerConfig capped;
    capped.max_chunk_items = 50;
    ChunkScheduler scheduler2({&a}, {}, capped);
    for (const ChunkRecord& c : scheduler2.plan(1000)) {
        EXPECT_LE(c.count, 50u);
    }
}

TEST(ChunkPlan, WarmStartCommitLeadsEachDeviceQueue) {
    Device a(profile("a", 4, 1e6)), b(profile("b", 4, 1e6));
    SchedulerConfig config;
    config.warm_start_commit = 0.5;
    ChunkScheduler scheduler({&a, &b}, {0.5, 0.5}, config);
    const auto chunks = scheduler.plan(8000);
    // First chunk of each owner is the committed half of its share.
    std::size_t leads_seen = 0;
    for (std::size_t owner = 0; owner < 2; ++owner) {
        for (const ChunkRecord& c : chunks) {
            if (c.owner != owner) continue;
            EXPECT_EQ(c.count, 2000u); // 0.5 commit x 4000 share
            ++leads_seen;
            break;
        }
    }
    EXPECT_EQ(leads_seen, 2u);
}

TEST(ChunkScheduler, RejectsDegenerateInputs) {
    Device a(profile("a", 4, 1e6));
    EXPECT_THROW(ChunkScheduler({}, {}), std::invalid_argument);
    EXPECT_THROW(ChunkScheduler({nullptr}, {}), std::invalid_argument);
    EXPECT_THROW(ChunkScheduler({&a}, {1.0, 2.0}), std::invalid_argument);
}

// ------------------------------------------------- fault-free schedules

TEST(ChunkScheduler, RunsEveryItemExactlyOnce) {
    Device a(profile("a", 4, 1e6)), b(profile("b", 4, 2e6));
    ChunkScheduler scheduler({&a, &b}, {});
    CountingRunner work(5000);
    const ScheduleStats stats = scheduler.run(5000, work.runner());
    work.expect_each_item_once();
    EXPECT_EQ(stats.chunks, stats.records.size());
    EXPECT_EQ(stats.retries, 0u);
    std::size_t items = 0;
    for (const auto& d : stats.per_device) items += d.items;
    EXPECT_EQ(items, 5000u);
    EXPECT_GT(stats.makespan_seconds(), 0.0);
}

TEST(ChunkScheduler, EmptyRunIsANoOp) {
    Device a(profile("a", 4, 1e6));
    ChunkScheduler scheduler({&a}, {});
    CountingRunner work(1);
    const ScheduleStats stats = scheduler.run(0, work.runner());
    EXPECT_EQ(stats.chunks, 0u);
    EXPECT_EQ(stats.makespan_seconds(), 0.0);
}

TEST(ChunkScheduler, FastDeviceStealsFromSlowOne) {
    // Equal warm start, 8x speed gap: the fast device must take over
    // most of the slow device's queue.
    Device slow(profile("slow", 4, 1e6)), fast(profile("fast", 4, 8e6));
    ChunkScheduler scheduler({&slow, &fast}, {0.5, 0.5});
    CountingRunner work(8000);
    const ScheduleStats stats = scheduler.run(8000, work.runner());
    work.expect_each_item_once();
    EXPECT_GT(stats.steals, 0u);
    EXPECT_GT(stats.per_device[1].items, stats.per_device[0].items);
    // The modeled makespan beats the committed 50/50 static split,
    // where the slow device alone needs 4000 x 1000 ops / 4e6 ops/s.
    const double static_seconds = 4000.0 * 1000.0 / 4e6;
    EXPECT_LT(stats.makespan_seconds(), static_seconds);
}

TEST(ChunkScheduler, MakespanIsBusiestDevice) {
    Device a(profile("a", 4, 1e6)), b(profile("b", 4, 3e6));
    ChunkScheduler scheduler({&a, &b}, {});
    CountingRunner work(3000);
    const ScheduleStats stats = scheduler.run(3000, work.runner());
    EXPECT_DOUBLE_EQ(stats.makespan_seconds(),
                     std::max(stats.per_device[0].busy_seconds,
                              stats.per_device[1].busy_seconds));
}

// ------------------------------------------------------ fault handling

TEST(ChunkScheduler, MidBatchDeviceDeathRequeuesItsChunks) {
    Device healthy(profile("healthy", 4, 1e6));
    Device dying(profile("dying", 4, 1e6));
    FaultPlan plan;
    plan.fail_on_launch = 2; // one good launch, then dead
    plan.fail_forever = true;
    dying.inject_faults(plan);

    ChunkScheduler scheduler({&healthy, &dying}, {0.5, 0.5});
    CountingRunner work(4000);
    const ScheduleStats stats = scheduler.run(4000, work.runner());
    work.expect_each_item_once();
    EXPECT_GE(stats.retries, 1u);
    EXPECT_TRUE(stats.per_device[1].quarantined);
    EXPECT_GE(stats.per_device[1].failures, 1u);
    EXPECT_GE(stats.per_device[1].chunks, 1u); // mapped before dying
    EXPECT_GT(stats.per_device[0].items, stats.per_device[1].items);
    dying.clear_faults();
}

TEST(ChunkScheduler, PersistentlyFailingDeviceIsQuarantined) {
    Device good(profile("good", 4, 1e6));
    Device broken(profile("broken", 4, 1e6));
    FaultPlan plan;
    plan.fail_on_launch = 1;
    plan.fail_forever = true;
    plan.status = OclStatus::MemObjectAllocFail;
    broken.inject_faults(plan);

    SchedulerConfig config;
    config.quarantine_after = 2;
    ChunkScheduler scheduler({&good, &broken}, {}, config);
    CountingRunner work(2000);
    const ScheduleStats stats = scheduler.run(2000, work.runner());
    work.expect_each_item_once();
    EXPECT_TRUE(stats.per_device[1].quarantined);
    EXPECT_EQ(stats.per_device[1].chunks, 0u);
    EXPECT_GE(stats.per_device[1].failures, 2u);
    EXPECT_EQ(stats.per_device[0].items, 2000u);
    broken.clear_faults();
}

TEST(ChunkScheduler, AllDevicesFailingSurfacesCleanOclError) {
    Device a(profile("a", 4, 1e6)), b(profile("b", 4, 1e6));
    FaultPlan plan;
    plan.fail_on_launch = 1;
    plan.fail_forever = true;
    plan.status = OclStatus::OutOfResources;
    a.inject_faults(plan);
    b.inject_faults(plan);

    ChunkScheduler scheduler({&a, &b}, {});
    CountingRunner work(1000);
    try {
        scheduler.run(1000, work.runner());
        FAIL() << "expected OclError";
    } catch (const OclError& e) {
        EXPECT_EQ(e.status(), OclStatus::OutOfResources);
    }
    a.clear_faults();
    b.clear_faults();
}

TEST(ChunkScheduler, TransientFaultsAreRetriedWithinBounds) {
    Device flaky(profile("flaky", 4, 1e6));
    FaultPlan plan;
    plan.transient_rate = 0.25;
    plan.seed = 97; // deterministic schedule: single device, fixed plan
    flaky.inject_faults(plan);

    SchedulerConfig config;
    config.chunk_items = 100; // ~40 launches: the stream surely fires
    config.quarantine_after = 1000; // transient faults must not kill it
    config.max_chunk_retries = 20;
    ChunkScheduler scheduler({&flaky}, {}, config);
    CountingRunner work(4000);
    const ScheduleStats stats = scheduler.run(4000, work.runner());
    work.expect_each_item_once();
    EXPECT_GT(stats.retries, 0u);
    EXPECT_FALSE(stats.per_device[0].quarantined);
    flaky.clear_faults();
}

TEST(ChunkScheduler, ChunkOutOfRetriesFailsTheRun) {
    Device flaky(profile("flaky", 4, 1e6));
    FaultPlan plan;
    plan.transient_rate = 1.0;
    flaky.inject_faults(plan);

    SchedulerConfig config;
    config.max_chunk_retries = 2;
    config.quarantine_after = 1000;
    ChunkScheduler scheduler({&flaky}, {}, config);
    CountingRunner work(100);
    EXPECT_THROW(scheduler.run(100, work.runner()), OclError);
    flaky.clear_faults();
}

TEST(ChunkScheduler, NonOclExceptionsPropagateVerbatim) {
    Device a(profile("a", 4, 1e6));
    ChunkScheduler scheduler({&a}, {});
    EXPECT_THROW(scheduler.run(10,
                               [](Device&, std::size_t, std::size_t)
                                   -> LaunchStats {
                                   throw std::logic_error("kernel bug");
                               }),
                 std::logic_error);
}

// ------------------------------------------- mapper-level fault suite

class SchedulerMapperTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        GenomeSimConfig gconfig;
        gconfig.length = 100'000;
        gconfig.seed = 43;
        reference_ = new Reference(simulate_genome(gconfig));
        fm_ = new FmIndex(*reference_, 4);
        ReadSimConfig rconfig;
        rconfig.n_reads = 500;
        rconfig.read_length = 100;
        rconfig.max_errors = 4;
        sim_ = new SimulatedReads(simulate_reads(*reference_, rconfig));
    }
    static void TearDownTestSuite() {
        delete sim_;
        delete fm_;
        delete reference_;
        sim_ = nullptr;
        fm_ = nullptr;
        reference_ = nullptr;
    }

    static MapResult reference_result() {
        Device dev(profile("ref", 8, 1e9));
        auto mapper = repute::core::make_repute(*reference_, *fm_,
                                                {{&dev, 1.0}});
        return mapper->map(sim_->batch, 4);
    }

    static void expect_identical(const MapResult& a, const MapResult& b) {
        ASSERT_EQ(a.per_read.size(), b.per_read.size());
        for (std::size_t i = 0; i < a.per_read.size(); ++i) {
            ASSERT_EQ(a.per_read[i], b.per_read[i]) << "read " << i;
        }
    }

    static Reference* reference_;
    static FmIndex* fm_;
    static SimulatedReads* sim_;
};

Reference* SchedulerMapperTest::reference_ = nullptr;
FmIndex* SchedulerMapperTest::fm_ = nullptr;
SimulatedReads* SchedulerMapperTest::sim_ = nullptr;

TEST_F(SchedulerMapperTest, DynamicMatchesStaticWithoutFaults) {
    Device a(profile("a", 8, 1e9)), b(profile("b", 4, 0.5e9));
    HeterogeneousMapperConfig config;
    config.schedule = ScheduleMode::Dynamic;
    auto mapper = repute::core::make_repute(
        *reference_, *fm_, {{&a, 0.6}, {&b, 0.4}}, config);
    const auto result = mapper->map(sim_->batch, 4);
    expect_identical(reference_result(), result);
    EXPECT_GT(result.schedule->chunks, 0u);
    EXPECT_EQ(result.schedule->retries, 0u);
    std::size_t reads = 0;
    for (const auto& run : result.device_runs) reads += run.reads;
    EXPECT_EQ(reads, sim_->batch.size());
}

TEST_F(SchedulerMapperTest, SkewedFleetSurvivesMidBatchDeviceFailure) {
    // The acceptance scenario: 1 fast GPU + 2 slow CPUs, one CPU dies
    // mid-batch; the batch must still complete with output identical to
    // the fault-free single-device run.
    DeviceProfile gpu = profile("fast-gpu", 16, 0.2e9);
    gpu.type = repute::ocl::DeviceType::Gpu;
    gpu.min_resident_items = 4;
    Device fast(gpu);
    Device cpu_a(profile("slow-cpu-a", 4, 0.2e9));
    Device cpu_b(profile("slow-cpu-b", 4, 0.2e9));

    FaultPlan plan;
    plan.fail_on_launch = 2; // first chunk lands, then the device dies
    plan.fail_forever = true;
    cpu_b.inject_faults(plan);

    HeterogeneousMapperConfig config;
    config.schedule = ScheduleMode::Dynamic;
    // Fine chunks so the dying device demonstrably pulls again mid-batch
    // (a failed launch barely advances its modeled clock, so it keeps
    // pulling — and failing — until quarantined).
    config.scheduler.chunk_items = 20;
    auto mapper = repute::core::make_repute(
        *reference_, *fm_,
        {{&fast, 1.0}, {&cpu_a, 1.0}, {&cpu_b, 1.0}}, config);
    const auto result = mapper->map(sim_->batch, 4);
    cpu_b.clear_faults();

    expect_identical(reference_result(), result);
    EXPECT_GE(result.schedule->retries, 1u);
    ASSERT_EQ(result.schedule->per_device.size(), 3u);
    EXPECT_TRUE(result.schedule->per_device[2].quarantined);
    EXPECT_GT(result.mapping_seconds, 0.0);
}

TEST_F(SchedulerMapperTest, AllDevicesDeadSurfacesOclError) {
    Device a(profile("a", 8, 1e9)), b(profile("b", 8, 1e9));
    FaultPlan plan;
    plan.fail_on_launch = 1;
    plan.fail_forever = true;
    a.inject_faults(plan);
    b.inject_faults(plan);

    HeterogeneousMapperConfig config;
    config.schedule = ScheduleMode::Dynamic;
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            {{&a, 1.0}, {&b, 1.0}},
                                            config);
    EXPECT_THROW(mapper->map(sim_->batch, 4), OclError);
    a.clear_faults();
    b.clear_faults();
}

TEST_F(SchedulerMapperTest, TransientFaultsStillMapEveryRead) {
    Device steady(profile("steady", 8, 1e9));
    Device flaky(profile("flaky", 8, 1e9));
    FaultPlan plan;
    plan.transient_rate = 0.3;
    plan.seed = 11;
    flaky.inject_faults(plan);

    HeterogeneousMapperConfig config;
    config.schedule = ScheduleMode::Dynamic;
    config.scheduler.quarantine_after = 1000;
    config.scheduler.max_chunk_retries = 20;
    auto mapper = repute::core::make_repute(
        *reference_, *fm_, {{&steady, 0.5}, {&flaky, 0.5}}, config);
    const auto result = mapper->map(sim_->batch, 4);
    flaky.clear_faults();
    expect_identical(reference_result(), result);
}

TEST_F(SchedulerMapperTest, IncapableDeviceDroppedFromFleet) {
    DeviceProfile cramped = profile("cramped", 8, 1e9);
    cramped.private_memory_per_unit = 64; // kernel scratch won't fit
    Device small(cramped);
    Device capable(profile("capable", 8, 1e9));

    HeterogeneousMapperConfig config;
    config.schedule = ScheduleMode::Dynamic;
    auto mapper = repute::core::make_repute(
        *reference_, *fm_, {{&small, 0.5}, {&capable, 0.5}}, config);
    const auto result = mapper->map(sim_->batch, 4);
    expect_identical(reference_result(), result);
    // Only the capable device participated.
    ASSERT_EQ(result.schedule->per_device.size(), 1u);
    EXPECT_EQ(result.schedule->per_device[0].device_name, "capable");
}

TEST_F(SchedulerMapperTest, TunedWarmStartDrivesDynamicSchedule) {
    Device a(profile("a", 8, 1e9)), b(profile("b", 8, 0.25e9));
    const auto tuned = repute::core::tune_shares(
        *reference_, *fm_, sim_->batch, 4, 12, {&a, &b});
    HeterogeneousMapperConfig config;
    config.schedule = ScheduleMode::Dynamic;
    auto mapper = repute::core::make_repute(*reference_, *fm_,
                                            tuned.shares, config);
    const auto result = mapper->map(sim_->batch, 4);
    expect_identical(reference_result(), result);
    // Warm start ~4:1 → the fast device maps the bulk.
    EXPECT_GT(result.schedule->per_device[0].items,
              2 * result.schedule->per_device[1].items);
}

} // namespace
