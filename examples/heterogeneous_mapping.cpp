// Heterogeneous mapping (paper §III-B): the same read set mapped on the
// CPU alone, then split across CPU + both GPUs — showing the device
// runs, the bottleneck device, and the speedup from task parallelism.

#include <cstdio>

#include "core/kernels.hpp"
#include "core/repute_mapper.hpp"
#include "core/tuner.hpp"
#include "filter/memopt_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/platform.hpp"
#include "util/args.hpp"

using namespace repute;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::uint32_t delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    const std::uint32_t s_min =
        static_cast<std::uint32_t>(args.get_int("smin", 22));

    genomics::GenomeSimConfig gconfig;
    gconfig.length =
        static_cast<std::size_t>(args.get_int("genome", 2'000'000));
    const auto reference = genomics::simulate_genome(gconfig);
    const index::FmIndex fm(reference, 4);

    genomics::ReadSimConfig rconfig;
    rconfig.n_reads =
        static_cast<std::size_t>(args.get_int("reads", 2000));
    rconfig.read_length = 150;
    rconfig.max_errors = delta;
    const auto sim = genomics::simulate_reads(reference, rconfig);

    auto platform = ocl::Platform::system1();
    auto& cpu = platform.device("i7-2600");
    auto& gpu0 = platform.device("gtx590-0");
    auto& gpu1 = platform.device("gtx590-1");

    // CPU only. All kernel knobs, s_min included, travel in the config.
    core::HeterogeneousMapperConfig config;
    config.kernel.s_min = s_min;
    auto cpu_mapper =
        core::make_repute(reference, fm, {{&cpu, 1.0}}, config);
    const auto cpu_result = cpu_mapper->map(sim.batch, delta);
    std::printf("REPUTE-cpu:  %.4f s modeled\n",
                cpu_result.mapping_seconds);

    // CPU + 2 GPUs, shares balanced by occupancy-adjusted throughput.
    const filter::MemoryOptimizedSeeder probe(s_min);
    const auto scratch = core::kernel_scratch_bytes(
        probe, rconfig.read_length, delta);
    auto shares = core::balanced_shares({&cpu, &gpu0, &gpu1}, scratch);
    std::printf("kernel scratch/work-item: %llu B; GPU occupancy %.2f\n",
                static_cast<unsigned long long>(scratch),
                gpu0.utilization_for_scratch(scratch));

    auto all_mapper =
        core::make_repute(reference, fm, std::move(shares), config);
    const auto all_result = all_mapper->map(sim.batch, delta);
    std::printf("REPUTE-all:  %.4f s modeled (%.2fx speedup)\n",
                all_result.mapping_seconds,
                cpu_result.mapping_seconds / all_result.mapping_seconds);

    for (const auto& run : all_result.device_runs) {
        std::printf("  %-10s %6zu reads  %.4f s  (util %.2f)\n",
                    run.device_name.c_str(), run.reads, run.stats.seconds,
                    run.stats.utilization);
    }

    // Auto-tuned split: probe each device on a read slice and solve for
    // finish-together shares (the "judicious distribution" of Fig. 3).
    const auto tuned = core::tune_shares(reference, fm, sim.batch, delta,
                                         s_min, {&cpu, &gpu0, &gpu1});
    auto tuned_mapper =
        core::make_repute(reference, fm, tuned.shares, config);
    const auto tuned_result = tuned_mapper->map(sim.batch, delta);
    std::printf("REPUTE-tuned: %.4f s modeled (predicted %.4f s)\n",
                tuned_result.mapping_seconds, tuned.predicted_seconds);
    std::printf("bottleneck = slowest device; see Fig. 3 for the cost "
                "of a bad split\n");

    // Dynamic work stealing: the tuned shares become a warm start, and
    // idle devices steal queued chunks instead of waiting on a
    // mispredicted split (survives a device dying mid-batch, too).
    core::HeterogeneousMapperConfig dyn = config;
    dyn.schedule = core::ScheduleMode::Dynamic;
    auto dyn_mapper =
        core::make_repute(reference, fm, tuned.shares, dyn);
    const auto dyn_result = dyn_mapper->map(sim.batch, delta);
    std::printf("REPUTE-dynamic: %.4f s modeled (%zu chunks, %zu steals, "
                "%zu retries)\n",
                dyn_result.mapping_seconds, dyn_result.schedule->chunks,
                dyn_result.schedule->steals, dyn_result.schedule->retries);
    for (const auto& dev : dyn_result.schedule->per_device) {
        std::printf("  %-10s %6zu reads in %zu chunks  %.4f s busy\n",
                    dev.device_name.c_str(), dev.items, dev.chunks,
                    dev.busy_seconds);
    }
    return 0;
}
