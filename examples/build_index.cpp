// build_index — build the FM-index for a FASTA reference once and save
// it to disk (binary), so repeated mapping runs skip construction.
//
//   build_index --reference ref.fa --out ref.fmi [--sa-sample 4]
//   map_fastq   --reference ref.fa --index ref.fmi --reads r.fastq ...
//
// Without --reference a demo genome is generated, indexed, saved,
// reloaded and sanity-checked, so the example runs standalone.

#include <cstdio>
#include <fstream>

#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "index/fm_index.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace repute;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::string fasta = args.get_string("reference", "");
    const std::string out_path = args.get_string("out", "reference.fmi");
    const auto sa_sample =
        static_cast<std::uint32_t>(args.get_int("sa-sample", 4));

    genomics::Reference reference;
    if (fasta.empty()) {
        genomics::GenomeSimConfig config;
        config.length = 2'000'000;
        reference = genomics::simulate_genome(config);
        std::printf("no --reference given; using a %zu bp demo genome\n",
                    reference.size());
    } else {
        const genomics::MultiReference multi(
            genomics::read_fasta_file(fasta));
        reference = multi.concatenated();
    }

    util::Stopwatch timer;
    const index::FmIndex fm(reference, sa_sample);
    std::printf("index built in %.1f s: %.1f MB (sa_sample=%u)\n",
                timer.seconds(),
                static_cast<double>(fm.memory_bytes()) / 1e6, sa_sample);

    {
        std::ofstream out(out_path, std::ios::binary);
        fm.save(out);
        reference.sequence().save(out); // text travels with the index
    }
    std::printf("saved to %s\n", out_path.c_str());

    // Round-trip sanity check.
    timer.reset();
    std::ifstream in(out_path, std::ios::binary);
    const auto loaded = index::FmIndex::load(in);
    const auto text = util::PackedDna::load(in);
    const auto probe = reference.sequence().extract(1234, 20);
    if (loaded.search(probe).count() != fm.search(probe).count() ||
        text.size() != reference.size()) {
        std::fprintf(stderr, "round-trip mismatch!\n");
        return 1;
    }
    std::printf("reloaded and verified in %.2f s\n", timer.seconds());
    return 0;
}
