// Quickstart: simulate a genome, index it, map reads with REPUTE, and
// write SAM. This touches the whole public API in ~60 lines:
//
//   genomics -> simulate_genome / simulate_reads
//   index    -> FmIndex
//   core     -> make_repute, MapResult, to_sam
//   ocl      -> Platform / devices
//
// Build & run:   ./examples/quickstart [--reads N] [--genome BP]

#include <cstdio>
#include <sstream>

#include "core/report.hpp"
#include "core/repute_mapper.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/platform.hpp"
#include "util/args.hpp"

using namespace repute;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);

    // 1. A reference genome. (Real FASTA input: see examples/map_fastq.)
    genomics::GenomeSimConfig gconfig;
    gconfig.length =
        static_cast<std::size_t>(args.get_int("genome", 1'000'000));
    const auto reference = genomics::simulate_genome(gconfig);
    std::printf("reference %s: %zu bp\n", reference.name().c_str(),
                reference.size());

    // 2. The FM-index (suffix array sampled every 4 positions).
    const index::FmIndex fm(reference, 4);
    std::printf("FM-index: %.1f MB\n",
                static_cast<double>(fm.memory_bytes()) / 1e6);

    // 3. Reads with up to 5 errors each.
    genomics::ReadSimConfig rconfig;
    rconfig.n_reads =
        static_cast<std::size_t>(args.get_int("reads", 1000));
    rconfig.read_length = 100;
    rconfig.max_errors = 5;
    const auto sim = genomics::simulate_reads(reference, rconfig);

    // 4. REPUTE on the workstation CPU device, delta = 5.
    auto platform = ocl::Platform::system1();
    core::HeterogeneousMapperConfig config;
    config.kernel.s_min = 14;
    auto mapper = core::make_repute(reference, fm,
                                    {{&platform.device("i7-2600"), 1.0}},
                                    config);
    const auto result = mapper->map(sim.batch, /*delta=*/5);

    std::printf("%s", core::format_map_report(sim.batch, result).c_str());

    // 5. SAM output (first few records).
    const auto sam = core::to_sam(sim.batch, result, reference.name());
    std::ostringstream out;
    genomics::write_sam(out, reference.name(), reference.size(),
                        {sam.begin(), sam.begin() + 5});
    std::printf("--- first SAM records ---\n%s", out.str().c_str());
    return 0;
}
