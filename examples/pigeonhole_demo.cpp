// Figure 1 illustration: the pigeonhole principle and what optimal
// dividers buy.
//
// Takes a read sampled from a repeat region (so k-mer frequencies are
// skewed, as in the paper's Fig. 1), splits it with the naive uniform
// partition and with REPUTE's DP, and prints each k-mer with its
// candidate count plus the total — the quantity filtration minimizes.

#include <cstdio>
#include <string>

#include "filter/memopt_seeder.hpp"
#include "filter/uniform_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "index/fm_index.hpp"
#include "util/args.hpp"
#include "util/prng.hpp"

using namespace repute;

namespace {

void show(const char* label, const filter::SeedPlan& plan,
          const std::string& read_ascii) {
    std::printf("%s\n", label);
    std::string ruler(read_ascii.size(), ' ');
    for (const auto& seed : plan.seeds) {
        if (seed.start > 0) ruler[seed.start - 1] = '|';
    }
    std::printf("  %s\n  %s\n", read_ascii.c_str(), ruler.c_str());
    for (const auto& seed : plan.seeds) {
        std::printf("  k-mer [%3u..%3u) len=%2u  candidates=%u\n",
                    seed.start, seed.start + seed.length, seed.length,
                    seed.candidate_count());
    }
    std::printf("  TOTAL candidate locations: %llu\n\n",
                static_cast<unsigned long long>(plan.total_candidates));
}

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::uint32_t delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    const std::uint32_t s_min =
        static_cast<std::uint32_t>(args.get_int("smin", 12));

    genomics::GenomeSimConfig gconfig;
    gconfig.length = 2'000'000;
    gconfig.interspersed_fraction = 0.55;
    gconfig.repeat_divergence = 0.02;
    const auto reference = genomics::simulate_genome(gconfig);
    const index::FmIndex fm(reference, 4);

    // Hunt for a read whose uniform partition has skewed frequencies —
    // the interesting Fig. 1 case.
    util::Xoshiro256 rng(static_cast<std::uint64_t>(args.get_int("seed", 9)));
    const filter::UniformSeeder uniform(s_min);
    const filter::MemoryOptimizedSeeder optimal(s_min);

    std::vector<std::uint8_t> read;
    filter::SeedPlan uniform_plan;
    for (int attempt = 0; attempt < 200; ++attempt) {
        const std::size_t pos = rng.bounded(reference.size() - 100);
        read = reference.sequence().extract(pos, 100);
        uniform_plan = uniform.select(fm, read, delta);
        if (uniform_plan.total_candidates >= 50) break; // skewed enough
    }

    std::string ascii(read.size(), '?');
    for (std::size_t i = 0; i < read.size(); ++i) {
        ascii[i] = util::code_to_base(read[i]);
    }

    std::printf("Pigeonhole demo: n=%zu, delta=%u -> %u k-mers "
                "(s_min=%u)\n\n",
                read.size(), delta, delta + 1, s_min);
    show("uniform dividers (naive pigeonhole):", uniform_plan, ascii);
    const auto optimal_plan = optimal.select(fm, read, delta);
    show("optimal dividers (REPUTE's DP, paper Fig. 2):", optimal_plan,
         ascii);

    const double factor =
        optimal_plan.total_candidates == 0
            ? 0.0
            : static_cast<double>(uniform_plan.total_candidates) /
                  static_cast<double>(optimal_plan.total_candidates);
    if (factor > 0) {
        std::printf("verification workload reduced %.1fx by the DP\n",
                    factor);
    }
    return 0;
}
