// Embedded genomics (the paper's headline): the same mapping job on the
// workstation and on the HiKey970 SoC, with the §III-D energy protocol
// applied to both. Slower, yes — but an order of magnitude less energy.

#include <cstdio>

#include "core/kernels.hpp"
#include "core/repute_mapper.hpp"
#include "energy/energy_meter.hpp"
#include "filter/memopt_seeder.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/platform.hpp"
#include "util/args.hpp"

using namespace repute;

namespace {

energy::EnergyReport run_on(ocl::Platform& platform,
                            const genomics::Reference& reference,
                            const index::FmIndex& fm,
                            const genomics::ReadBatch& batch,
                            std::uint32_t delta, std::uint32_t s_min) {
    const filter::MemoryOptimizedSeeder probe(s_min);
    const auto scratch = core::kernel_scratch_bytes(
        probe, batch.read_length, delta);
    auto shares = core::balanced_shares(platform.devices(), scratch);
    core::HeterogeneousMapperConfig config;
    config.kernel.s_min = s_min;
    auto mapper =
        core::make_repute(reference, fm, std::move(shares), config);
    const auto result = mapper->map(batch, delta);

    std::vector<energy::DeviceUsage> usage;
    for (const auto& run : result.device_runs) {
        usage.push_back({platform.find(run.device_name),
                         run.stats.seconds, run.power_scale});
    }
    return energy::measure(result.mapping_seconds, usage,
                           platform.idle_watts());
}

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::uint32_t delta =
        static_cast<std::uint32_t>(args.get_int("delta", 3));

    genomics::GenomeSimConfig gconfig;
    gconfig.length =
        static_cast<std::size_t>(args.get_int("genome", 2'000'000));
    const auto reference = genomics::simulate_genome(gconfig);
    const index::FmIndex fm(reference, 4);

    genomics::ReadSimConfig rconfig;
    rconfig.n_reads =
        static_cast<std::size_t>(args.get_int("reads", 2000));
    rconfig.read_length = 100;
    rconfig.max_errors = delta;
    const auto sim = genomics::simulate_reads(reference, rconfig);

    auto system1 = ocl::Platform::system1();
    auto system2 = ocl::Platform::system2();

    const auto workstation =
        run_on(system1, reference, fm, sim.batch, delta, /*s_min=*/22);
    const auto embedded =
        run_on(system2, reference, fm, sim.batch, delta, /*s_min=*/22);

    std::printf("workstation (CPU + 2 GPUs): %s\n",
                energy::to_string(workstation).c_str());
    std::printf("HiKey970 SoC (A73 + A53):   %s\n",
                energy::to_string(embedded).c_str());
    std::printf("\nslowdown on the SoC: %.1fx\n",
                embedded.mapping_seconds / workstation.mapping_seconds);
    std::printf("energy saving on the SoC: %.1fx\n",
                workstation.energy_joules / embedded.energy_joules);
    std::printf("\n\"moving genomics from workstations to embedded "
                "systems can unleash low-cost genomics\" (paper Sec. V)\n");
    return 0;
}
