// Paired-end mapping: simulate an FR library, map both mates with
// REPUTE, join into proper pairs, and demonstrate mate rescue.

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/paired.hpp"
#include "core/repute_mapper.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/pair_sim.hpp"
#include "genomics/sam_lite.hpp"
#include "index/fm_index.hpp"
#include "ocl/platform.hpp"
#include "util/args.hpp"

using namespace repute;

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    const std::uint32_t delta =
        static_cast<std::uint32_t>(args.get_int("delta", 4));

    genomics::GenomeSimConfig gconfig;
    gconfig.length =
        static_cast<std::size_t>(args.get_int("genome", 2'000'000));
    const auto reference = genomics::simulate_genome(gconfig);
    const index::FmIndex fm(reference, 4);

    genomics::PairSimConfig pconfig;
    pconfig.n_pairs =
        static_cast<std::size_t>(args.get_int("pairs", 2000));
    pconfig.read_length = 100;
    pconfig.max_errors = delta;
    pconfig.insert_mean = args.get_double("insert-mean", 350.0);
    pconfig.insert_stddev = args.get_double("insert-sd", 35.0);
    const auto sim = genomics::simulate_pairs(reference, pconfig);
    std::printf("simulated %zu pairs, insert ~N(%.0f, %.0f)\n",
                sim.first.size(), pconfig.insert_mean,
                pconfig.insert_stddev);

    auto platform = ocl::Platform::system1();
    core::HeterogeneousMapperConfig config;
    config.kernel.s_min = 14;
    auto mapper = core::make_repute(reference, fm,
                                    {{&platform.device("i7-2600"), 1.0}},
                                    config);

    core::PairedConfig pair_config;
    pair_config.min_insert = static_cast<std::uint32_t>(
        pconfig.insert_mean - 4 * pconfig.insert_stddev);
    pair_config.max_insert = static_cast<std::uint32_t>(
        pconfig.insert_mean + 4 * pconfig.insert_stddev);
    core::PairedMapper paired(*mapper, reference, pair_config);

    const auto result = paired.map_pairs(sim.first, sim.second, delta);
    std::printf("mapping: %.3f s modeled\n", result.mapping_seconds);
    std::printf("  proper pairs:      %zu\n",
                result.count(core::PairClass::Proper));
    std::printf("  rescued mates:     %zu\n",
                result.count(core::PairClass::Rescued));
    std::printf("  discordant:        %zu\n",
                result.count(core::PairClass::Discordant));
    std::printf("  one mate unmapped: %zu\n",
                result.count(core::PairClass::OneMateUnmapped));
    std::printf("  both unmapped:     %zu\n",
                result.count(core::PairClass::BothUnmapped));

    // Observed insert distribution of the proper pairs.
    double sum = 0.0, sq = 0.0;
    std::size_t n = 0;
    for (const auto& pair : result.pairs) {
        if (pair.classification != core::PairClass::Proper) continue;
        sum += pair.insert_size;
        sq += static_cast<double>(pair.insert_size) * pair.insert_size;
        ++n;
    }
    if (n > 0) {
        const double mean = sum / static_cast<double>(n);
        const double var = sq / static_cast<double>(n) - mean * mean;
        std::printf("observed insert: mean %.1f, sd %.1f (simulated "
                    "%.0f / %.0f)\n",
                    mean, var > 0 ? std::sqrt(var) : 0.0,
                    pconfig.insert_mean, pconfig.insert_stddev);
    }

    // SAM with pairing flags and TLEN (first two records).
    const auto sam = core::paired_to_sam(sim.first, sim.second, result,
                                         reference.name());
    std::ostringstream out;
    genomics::write_sam(out, reference.name(), reference.size(),
                        {sam.begin(), sam.begin() + 2});
    std::printf("--- first pair in SAM ---\n%s", out.str().c_str());
    return 0;
}
