// map_fastq — the monolithic (load-everything-then-map) reference path.
//
//   map_fastq --reference ref.fa --reads reads.fastq [--delta 5]
//             [--smin 14] [--max-locations 100] [--out out.sam]
//             [--cigar true]
//
// For real work prefer the `repute` CLI (src/cli), which streams the
// same mapping through the bounded batch pipeline; this example stays
// as the simplest possible end-to-end program and as the equivalence
// oracle the streaming tests compare against (both paths share
// pipeline::SamEmitter, so their SAM output is byte-identical).
//
// Multi-sequence FASTA references are supported (sequences are indexed
// as one concatenated text; mappings crossing a boundary are dropped
// and positions resolve back to per-sequence coordinates). With --cigar
// (default) each mapping is re-aligned for a precise position and CIGAR
// string — the paper's announced SAM extension.
//
// Without --reference/--reads the example writes a small simulated
// dataset to the working directory first and then maps it, so it is
// runnable out of the box.

#include <cstdio>
#include <fstream>

#include "core/repute_mapper.hpp"
#include "genomics/fastx.hpp"
#include "genomics/genome_sim.hpp"
#include "genomics/multi_reference.hpp"
#include "genomics/read_sim.hpp"
#include "index/fm_index.hpp"
#include "ocl/platform.hpp"
#include "pipeline/sam_emitter.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace repute;

namespace {

void write_demo_inputs(const std::string& fasta_path,
                       const std::string& fastq_path) {
    genomics::GenomeSimConfig gconfig;
    gconfig.length = 1'000'000;
    const auto reference = genomics::simulate_genome(gconfig);
    {
        std::ofstream fa(fasta_path);
        genomics::write_fasta(
            fa, {{reference.name(), reference.sequence().to_string()}});
    }
    genomics::ReadSimConfig rconfig;
    rconfig.n_reads = 1000;
    rconfig.read_length = 100;
    rconfig.max_errors = 5;
    rconfig.quality_model = true; // Illumina-like quality ramp
    const auto sim = genomics::simulate_reads(reference, rconfig);
    std::ofstream fq(fastq_path);
    genomics::write_fastq(fq, genomics::to_fastq_records(sim));
    std::printf("wrote demo inputs: %s, %s\n", fasta_path.c_str(),
                fastq_path.c_str());
}

} // namespace

int main(int argc, char** argv) {
    const util::Args args(argc, argv);
    std::string fasta = args.get_string("reference", "");
    std::string fastq = args.get_string("reads", "");
    const auto delta =
        static_cast<std::uint32_t>(args.get_int("delta", 5));
    const auto s_min =
        static_cast<std::uint32_t>(args.get_int("smin", 14));
    const auto max_locations =
        static_cast<std::uint32_t>(args.get_int("max-locations", 100));
    const std::string out_path = args.get_string("out", "out.sam");

    if (fasta.empty() || fastq.empty()) {
        fasta = "demo_reference.fa";
        fastq = "demo_reads.fastq";
        write_demo_inputs(fasta, fastq);
    }

    util::Stopwatch timer;
    const auto fasta_records = genomics::read_fasta_file(fasta);
    if (fasta_records.empty()) {
        std::fprintf(stderr, "no sequences in %s\n", fasta.c_str());
        return 1;
    }
    const genomics::MultiReference multi(fasta_records);
    const auto& reference = multi.concatenated();
    std::printf("reference: %zu sequence(s), %zu bp total "
                "(loaded in %.1f s)\n",
                multi.sequence_count(), reference.size(), timer.seconds());

    timer.reset();
    const index::FmIndex fm(reference, 4);
    std::printf("index built in %.1f s (%.1f MB)\n", timer.seconds(),
                static_cast<double>(fm.memory_bytes()) / 1e6);

    std::size_t dropped = 0;
    const auto batch =
        genomics::to_read_batch(genomics::read_fastq_file(fastq), &dropped);
    std::printf("%zu reads of length %zu (%zu dropped)\n", batch.size(),
                batch.read_length, dropped);
    if (batch.empty()) return 1;

    auto platform = ocl::Platform::system1();
    core::HeterogeneousMapperConfig config;
    config.kernel.s_min = s_min;
    config.kernel.max_locations_per_read = max_locations;
    auto mapper =
        core::make_repute(reference, fm,
                          {{&platform.device("i7-2600"), 1.0}}, config);

    timer.reset();
    const auto result = mapper->map(batch, delta);
    std::printf("mapped %zu/%zu reads (%llu mappings) — host %.1f s, "
                "modeled %.3f s\n",
                result.reads_mapped(), batch.size(),
                static_cast<unsigned long long>(result.total_mappings()),
                timer.seconds(), result.mapping_seconds);

    // SAM export through the shared emitter: resolves concatenated
    // coordinates back to the source sequences, drops
    // boundary-straddling mappings, computes CIGARs unless disabled.
    std::ofstream out(out_path, std::ios::binary);
    pipeline::SamEmitterConfig emit_config;
    emit_config.cigar = args.get_bool("cigar", true);
    emit_config.delta = delta;
    pipeline::SamEmitter emitter(out, multi, emit_config);
    emitter.write_header();
    emitter.emit(batch, result);
    std::printf("SAM written to %s (%zu records; %zu boundary-dropped, "
                "%zu cigar-dropped)\n",
                out_path.c_str(), emitter.stats().records,
                emitter.stats().dropped_boundary,
                emitter.stats().dropped_cigar);
    return 0;
}
