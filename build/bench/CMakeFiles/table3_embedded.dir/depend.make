# Empty dependencies file for table3_embedded.
# This may be replaced when dependencies are built.
