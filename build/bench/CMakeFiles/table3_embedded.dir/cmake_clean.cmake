file(REMOVE_RECURSE
  "CMakeFiles/table3_embedded.dir/table3_embedded.cpp.o"
  "CMakeFiles/table3_embedded.dir/table3_embedded.cpp.o.d"
  "table3_embedded"
  "table3_embedded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
