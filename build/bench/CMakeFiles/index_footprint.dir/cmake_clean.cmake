file(REMOVE_RECURSE
  "CMakeFiles/index_footprint.dir/index_footprint.cpp.o"
  "CMakeFiles/index_footprint.dir/index_footprint.cpp.o.d"
  "index_footprint"
  "index_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
