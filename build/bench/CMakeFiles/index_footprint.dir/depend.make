# Empty dependencies file for index_footprint.
# This may be replaced when dependencies are built.
