# Empty dependencies file for table2_heterogeneous.
# This may be replaced when dependencies are built.
