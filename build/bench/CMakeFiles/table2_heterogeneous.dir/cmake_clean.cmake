file(REMOVE_RECURSE
  "CMakeFiles/table2_heterogeneous.dir/table2_heterogeneous.cpp.o"
  "CMakeFiles/table2_heterogeneous.dir/table2_heterogeneous.cpp.o.d"
  "table2_heterogeneous"
  "table2_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
