file(REMOVE_RECURSE
  "CMakeFiles/fig3_workload_split.dir/fig3_workload_split.cpp.o"
  "CMakeFiles/fig3_workload_split.dir/fig3_workload_split.cpp.o.d"
  "fig3_workload_split"
  "fig3_workload_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_workload_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
