# Empty dependencies file for fig3_workload_split.
# This may be replaced when dependencies are built.
