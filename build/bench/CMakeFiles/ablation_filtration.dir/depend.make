# Empty dependencies file for ablation_filtration.
# This may be replaced when dependencies are built.
