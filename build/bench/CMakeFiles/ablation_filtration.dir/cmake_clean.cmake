file(REMOVE_RECURSE
  "CMakeFiles/ablation_filtration.dir/ablation_filtration.cpp.o"
  "CMakeFiles/ablation_filtration.dir/ablation_filtration.cpp.o.d"
  "ablation_filtration"
  "ablation_filtration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filtration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
