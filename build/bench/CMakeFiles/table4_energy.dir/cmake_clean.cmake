file(REMOVE_RECURSE
  "CMakeFiles/table4_energy.dir/table4_energy.cpp.o"
  "CMakeFiles/table4_energy.dir/table4_energy.cpp.o.d"
  "table4_energy"
  "table4_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
