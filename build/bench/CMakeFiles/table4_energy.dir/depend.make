# Empty dependencies file for table4_energy.
# This may be replaced when dependencies are built.
