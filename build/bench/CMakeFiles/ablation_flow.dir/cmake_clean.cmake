file(REMOVE_RECURSE
  "CMakeFiles/ablation_flow.dir/ablation_flow.cpp.o"
  "CMakeFiles/ablation_flow.dir/ablation_flow.cpp.o.d"
  "ablation_flow"
  "ablation_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
