# Empty compiler generated dependencies file for ablation_flow.
# This may be replaced when dependencies are built.
