file(REMOVE_RECURSE
  "CMakeFiles/table1_homogeneous.dir/table1_homogeneous.cpp.o"
  "CMakeFiles/table1_homogeneous.dir/table1_homogeneous.cpp.o.d"
  "table1_homogeneous"
  "table1_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
