# Empty dependencies file for table1_homogeneous.
# This may be replaced when dependencies are built.
