
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/test_serialize.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_serialize.dir/test_serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/repute_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/repute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/repute_align.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/repute_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/repute_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/repute_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/repute_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/repute_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
