file(REMOVE_RECURSE
  "CMakeFiles/test_ocl.dir/test_ocl.cpp.o"
  "CMakeFiles/test_ocl.dir/test_ocl.cpp.o.d"
  "test_ocl"
  "test_ocl.pdb"
  "test_ocl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
