# Empty compiler generated dependencies file for test_multiref.
# This may be replaced when dependencies are built.
