file(REMOVE_RECURSE
  "CMakeFiles/test_multiref.dir/test_multiref.cpp.o"
  "CMakeFiles/test_multiref.dir/test_multiref.cpp.o.d"
  "test_multiref"
  "test_multiref.pdb"
  "test_multiref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
