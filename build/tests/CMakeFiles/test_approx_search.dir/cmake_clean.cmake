file(REMOVE_RECURSE
  "CMakeFiles/test_approx_search.dir/test_approx_search.cpp.o"
  "CMakeFiles/test_approx_search.dir/test_approx_search.cpp.o.d"
  "test_approx_search"
  "test_approx_search.pdb"
  "test_approx_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approx_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
