# Empty compiler generated dependencies file for test_genomics.
# This may be replaced when dependencies are built.
