# Empty dependencies file for test_bi_fm_index.
# This may be replaced when dependencies are built.
