file(REMOVE_RECURSE
  "CMakeFiles/test_bi_fm_index.dir/test_bi_fm_index.cpp.o"
  "CMakeFiles/test_bi_fm_index.dir/test_bi_fm_index.cpp.o.d"
  "test_bi_fm_index"
  "test_bi_fm_index.pdb"
  "test_bi_fm_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bi_fm_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
