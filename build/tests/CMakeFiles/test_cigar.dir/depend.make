# Empty dependencies file for test_cigar.
# This may be replaced when dependencies are built.
