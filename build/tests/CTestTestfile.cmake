# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_genomics[1]_include.cmake")
include("/root/repo/build/tests/test_index[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_filter[1]_include.cmake")
include("/root/repo/build/tests/test_ocl[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_approx_search[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_multiref[1]_include.cmake")
include("/root/repo/build/tests/test_cigar[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_bi_fm_index[1]_include.cmake")
include("/root/repo/build/tests/test_tuner[1]_include.cmake")
include("/root/repo/build/tests/test_paired[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
