file(REMOVE_RECURSE
  "CMakeFiles/embedded_energy.dir/embedded_energy.cpp.o"
  "CMakeFiles/embedded_energy.dir/embedded_energy.cpp.o.d"
  "embedded_energy"
  "embedded_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
