# Empty dependencies file for embedded_energy.
# This may be replaced when dependencies are built.
