file(REMOVE_RECURSE
  "CMakeFiles/pigeonhole_demo.dir/pigeonhole_demo.cpp.o"
  "CMakeFiles/pigeonhole_demo.dir/pigeonhole_demo.cpp.o.d"
  "pigeonhole_demo"
  "pigeonhole_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeonhole_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
