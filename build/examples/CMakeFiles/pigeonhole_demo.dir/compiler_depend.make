# Empty compiler generated dependencies file for pigeonhole_demo.
# This may be replaced when dependencies are built.
