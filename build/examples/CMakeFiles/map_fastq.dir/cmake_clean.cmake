file(REMOVE_RECURSE
  "CMakeFiles/map_fastq.dir/map_fastq.cpp.o"
  "CMakeFiles/map_fastq.dir/map_fastq.cpp.o.d"
  "map_fastq"
  "map_fastq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_fastq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
