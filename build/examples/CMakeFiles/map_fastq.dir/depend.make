# Empty dependencies file for map_fastq.
# This may be replaced when dependencies are built.
