file(REMOVE_RECURSE
  "librepute_index.a"
)
