# Empty dependencies file for repute_index.
# This may be replaced when dependencies are built.
