file(REMOVE_RECURSE
  "CMakeFiles/repute_index.dir/approx_search.cpp.o"
  "CMakeFiles/repute_index.dir/approx_search.cpp.o.d"
  "CMakeFiles/repute_index.dir/bi_fm_index.cpp.o"
  "CMakeFiles/repute_index.dir/bi_fm_index.cpp.o.d"
  "CMakeFiles/repute_index.dir/fm_index.cpp.o"
  "CMakeFiles/repute_index.dir/fm_index.cpp.o.d"
  "CMakeFiles/repute_index.dir/suffix_array.cpp.o"
  "CMakeFiles/repute_index.dir/suffix_array.cpp.o.d"
  "librepute_index.a"
  "librepute_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
