
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/approx_search.cpp" "src/index/CMakeFiles/repute_index.dir/approx_search.cpp.o" "gcc" "src/index/CMakeFiles/repute_index.dir/approx_search.cpp.o.d"
  "/root/repo/src/index/bi_fm_index.cpp" "src/index/CMakeFiles/repute_index.dir/bi_fm_index.cpp.o" "gcc" "src/index/CMakeFiles/repute_index.dir/bi_fm_index.cpp.o.d"
  "/root/repo/src/index/fm_index.cpp" "src/index/CMakeFiles/repute_index.dir/fm_index.cpp.o" "gcc" "src/index/CMakeFiles/repute_index.dir/fm_index.cpp.o.d"
  "/root/repo/src/index/suffix_array.cpp" "src/index/CMakeFiles/repute_index.dir/suffix_array.cpp.o" "gcc" "src/index/CMakeFiles/repute_index.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/repute_genomics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
