file(REMOVE_RECURSE
  "librepute_core.a"
)
