file(REMOVE_RECURSE
  "CMakeFiles/repute_core.dir/accuracy.cpp.o"
  "CMakeFiles/repute_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/repute_core.dir/cigar.cpp.o"
  "CMakeFiles/repute_core.dir/cigar.cpp.o.d"
  "CMakeFiles/repute_core.dir/kernels.cpp.o"
  "CMakeFiles/repute_core.dir/kernels.cpp.o.d"
  "CMakeFiles/repute_core.dir/mapping.cpp.o"
  "CMakeFiles/repute_core.dir/mapping.cpp.o.d"
  "CMakeFiles/repute_core.dir/paired.cpp.o"
  "CMakeFiles/repute_core.dir/paired.cpp.o.d"
  "CMakeFiles/repute_core.dir/report.cpp.o"
  "CMakeFiles/repute_core.dir/report.cpp.o.d"
  "CMakeFiles/repute_core.dir/repute_mapper.cpp.o"
  "CMakeFiles/repute_core.dir/repute_mapper.cpp.o.d"
  "CMakeFiles/repute_core.dir/tuner.cpp.o"
  "CMakeFiles/repute_core.dir/tuner.cpp.o.d"
  "librepute_core.a"
  "librepute_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
