
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/core/CMakeFiles/repute_core.dir/accuracy.cpp.o" "gcc" "src/core/CMakeFiles/repute_core.dir/accuracy.cpp.o.d"
  "/root/repo/src/core/cigar.cpp" "src/core/CMakeFiles/repute_core.dir/cigar.cpp.o" "gcc" "src/core/CMakeFiles/repute_core.dir/cigar.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/repute_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/repute_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/repute_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/repute_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/paired.cpp" "src/core/CMakeFiles/repute_core.dir/paired.cpp.o" "gcc" "src/core/CMakeFiles/repute_core.dir/paired.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/repute_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/repute_core.dir/report.cpp.o.d"
  "/root/repo/src/core/repute_mapper.cpp" "src/core/CMakeFiles/repute_core.dir/repute_mapper.cpp.o" "gcc" "src/core/CMakeFiles/repute_core.dir/repute_mapper.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/repute_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/repute_core.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/repute_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/repute_index.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/repute_align.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/repute_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/repute_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/repute_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
