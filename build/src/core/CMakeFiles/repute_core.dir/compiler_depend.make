# Empty compiler generated dependencies file for repute_core.
# This may be replaced when dependencies are built.
