file(REMOVE_RECURSE
  "librepute_genomics.a"
)
