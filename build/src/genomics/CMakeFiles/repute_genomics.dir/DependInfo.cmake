
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/fastx.cpp" "src/genomics/CMakeFiles/repute_genomics.dir/fastx.cpp.o" "gcc" "src/genomics/CMakeFiles/repute_genomics.dir/fastx.cpp.o.d"
  "/root/repo/src/genomics/genome_sim.cpp" "src/genomics/CMakeFiles/repute_genomics.dir/genome_sim.cpp.o" "gcc" "src/genomics/CMakeFiles/repute_genomics.dir/genome_sim.cpp.o.d"
  "/root/repo/src/genomics/multi_reference.cpp" "src/genomics/CMakeFiles/repute_genomics.dir/multi_reference.cpp.o" "gcc" "src/genomics/CMakeFiles/repute_genomics.dir/multi_reference.cpp.o.d"
  "/root/repo/src/genomics/pair_sim.cpp" "src/genomics/CMakeFiles/repute_genomics.dir/pair_sim.cpp.o" "gcc" "src/genomics/CMakeFiles/repute_genomics.dir/pair_sim.cpp.o.d"
  "/root/repo/src/genomics/read_sim.cpp" "src/genomics/CMakeFiles/repute_genomics.dir/read_sim.cpp.o" "gcc" "src/genomics/CMakeFiles/repute_genomics.dir/read_sim.cpp.o.d"
  "/root/repo/src/genomics/sam_lite.cpp" "src/genomics/CMakeFiles/repute_genomics.dir/sam_lite.cpp.o" "gcc" "src/genomics/CMakeFiles/repute_genomics.dir/sam_lite.cpp.o.d"
  "/root/repo/src/genomics/sequence.cpp" "src/genomics/CMakeFiles/repute_genomics.dir/sequence.cpp.o" "gcc" "src/genomics/CMakeFiles/repute_genomics.dir/sequence.cpp.o.d"
  "/root/repo/src/genomics/spectrum.cpp" "src/genomics/CMakeFiles/repute_genomics.dir/spectrum.cpp.o" "gcc" "src/genomics/CMakeFiles/repute_genomics.dir/spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
