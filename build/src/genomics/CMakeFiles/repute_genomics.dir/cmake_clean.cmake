file(REMOVE_RECURSE
  "CMakeFiles/repute_genomics.dir/fastx.cpp.o"
  "CMakeFiles/repute_genomics.dir/fastx.cpp.o.d"
  "CMakeFiles/repute_genomics.dir/genome_sim.cpp.o"
  "CMakeFiles/repute_genomics.dir/genome_sim.cpp.o.d"
  "CMakeFiles/repute_genomics.dir/multi_reference.cpp.o"
  "CMakeFiles/repute_genomics.dir/multi_reference.cpp.o.d"
  "CMakeFiles/repute_genomics.dir/pair_sim.cpp.o"
  "CMakeFiles/repute_genomics.dir/pair_sim.cpp.o.d"
  "CMakeFiles/repute_genomics.dir/read_sim.cpp.o"
  "CMakeFiles/repute_genomics.dir/read_sim.cpp.o.d"
  "CMakeFiles/repute_genomics.dir/sam_lite.cpp.o"
  "CMakeFiles/repute_genomics.dir/sam_lite.cpp.o.d"
  "CMakeFiles/repute_genomics.dir/sequence.cpp.o"
  "CMakeFiles/repute_genomics.dir/sequence.cpp.o.d"
  "CMakeFiles/repute_genomics.dir/spectrum.cpp.o"
  "CMakeFiles/repute_genomics.dir/spectrum.cpp.o.d"
  "librepute_genomics.a"
  "librepute_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
