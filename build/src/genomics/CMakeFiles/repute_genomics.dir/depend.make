# Empty dependencies file for repute_genomics.
# This may be replaced when dependencies are built.
