file(REMOVE_RECURSE
  "librepute_filter.a"
)
