file(REMOVE_RECURSE
  "CMakeFiles/repute_filter.dir/candidates.cpp.o"
  "CMakeFiles/repute_filter.dir/candidates.cpp.o.d"
  "CMakeFiles/repute_filter.dir/frequency_scanner.cpp.o"
  "CMakeFiles/repute_filter.dir/frequency_scanner.cpp.o.d"
  "CMakeFiles/repute_filter.dir/heuristic_seeder.cpp.o"
  "CMakeFiles/repute_filter.dir/heuristic_seeder.cpp.o.d"
  "CMakeFiles/repute_filter.dir/memopt_seeder.cpp.o"
  "CMakeFiles/repute_filter.dir/memopt_seeder.cpp.o.d"
  "CMakeFiles/repute_filter.dir/optimal_seeder.cpp.o"
  "CMakeFiles/repute_filter.dir/optimal_seeder.cpp.o.d"
  "CMakeFiles/repute_filter.dir/seed.cpp.o"
  "CMakeFiles/repute_filter.dir/seed.cpp.o.d"
  "CMakeFiles/repute_filter.dir/uniform_seeder.cpp.o"
  "CMakeFiles/repute_filter.dir/uniform_seeder.cpp.o.d"
  "librepute_filter.a"
  "librepute_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
