# Empty dependencies file for repute_filter.
# This may be replaced when dependencies are built.
