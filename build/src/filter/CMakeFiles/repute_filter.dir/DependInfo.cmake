
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/candidates.cpp" "src/filter/CMakeFiles/repute_filter.dir/candidates.cpp.o" "gcc" "src/filter/CMakeFiles/repute_filter.dir/candidates.cpp.o.d"
  "/root/repo/src/filter/frequency_scanner.cpp" "src/filter/CMakeFiles/repute_filter.dir/frequency_scanner.cpp.o" "gcc" "src/filter/CMakeFiles/repute_filter.dir/frequency_scanner.cpp.o.d"
  "/root/repo/src/filter/heuristic_seeder.cpp" "src/filter/CMakeFiles/repute_filter.dir/heuristic_seeder.cpp.o" "gcc" "src/filter/CMakeFiles/repute_filter.dir/heuristic_seeder.cpp.o.d"
  "/root/repo/src/filter/memopt_seeder.cpp" "src/filter/CMakeFiles/repute_filter.dir/memopt_seeder.cpp.o" "gcc" "src/filter/CMakeFiles/repute_filter.dir/memopt_seeder.cpp.o.d"
  "/root/repo/src/filter/optimal_seeder.cpp" "src/filter/CMakeFiles/repute_filter.dir/optimal_seeder.cpp.o" "gcc" "src/filter/CMakeFiles/repute_filter.dir/optimal_seeder.cpp.o.d"
  "/root/repo/src/filter/seed.cpp" "src/filter/CMakeFiles/repute_filter.dir/seed.cpp.o" "gcc" "src/filter/CMakeFiles/repute_filter.dir/seed.cpp.o.d"
  "/root/repo/src/filter/uniform_seeder.cpp" "src/filter/CMakeFiles/repute_filter.dir/uniform_seeder.cpp.o" "gcc" "src/filter/CMakeFiles/repute_filter.dir/uniform_seeder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/repute_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/repute_genomics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
