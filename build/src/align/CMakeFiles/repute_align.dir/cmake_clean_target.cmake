file(REMOVE_RECURSE
  "librepute_align.a"
)
