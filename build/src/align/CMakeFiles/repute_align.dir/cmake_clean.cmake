file(REMOVE_RECURSE
  "CMakeFiles/repute_align.dir/edit_distance.cpp.o"
  "CMakeFiles/repute_align.dir/edit_distance.cpp.o.d"
  "CMakeFiles/repute_align.dir/myers.cpp.o"
  "CMakeFiles/repute_align.dir/myers.cpp.o.d"
  "librepute_align.a"
  "librepute_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
