# Empty compiler generated dependencies file for repute_align.
# This may be replaced when dependencies are built.
