file(REMOVE_RECURSE
  "librepute_baselines.a"
)
