
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bwamem_like.cpp" "src/baselines/CMakeFiles/repute_baselines.dir/bwamem_like.cpp.o" "gcc" "src/baselines/CMakeFiles/repute_baselines.dir/bwamem_like.cpp.o.d"
  "/root/repo/src/baselines/gem_like.cpp" "src/baselines/CMakeFiles/repute_baselines.dir/gem_like.cpp.o" "gcc" "src/baselines/CMakeFiles/repute_baselines.dir/gem_like.cpp.o.d"
  "/root/repo/src/baselines/hobbes3_like.cpp" "src/baselines/CMakeFiles/repute_baselines.dir/hobbes3_like.cpp.o" "gcc" "src/baselines/CMakeFiles/repute_baselines.dir/hobbes3_like.cpp.o.d"
  "/root/repo/src/baselines/qgram_index.cpp" "src/baselines/CMakeFiles/repute_baselines.dir/qgram_index.cpp.o" "gcc" "src/baselines/CMakeFiles/repute_baselines.dir/qgram_index.cpp.o.d"
  "/root/repo/src/baselines/razers3_like.cpp" "src/baselines/CMakeFiles/repute_baselines.dir/razers3_like.cpp.o" "gcc" "src/baselines/CMakeFiles/repute_baselines.dir/razers3_like.cpp.o.d"
  "/root/repo/src/baselines/single_device_mapper.cpp" "src/baselines/CMakeFiles/repute_baselines.dir/single_device_mapper.cpp.o" "gcc" "src/baselines/CMakeFiles/repute_baselines.dir/single_device_mapper.cpp.o.d"
  "/root/repo/src/baselines/verify_common.cpp" "src/baselines/CMakeFiles/repute_baselines.dir/verify_common.cpp.o" "gcc" "src/baselines/CMakeFiles/repute_baselines.dir/verify_common.cpp.o.d"
  "/root/repo/src/baselines/yara_like.cpp" "src/baselines/CMakeFiles/repute_baselines.dir/yara_like.cpp.o" "gcc" "src/baselines/CMakeFiles/repute_baselines.dir/yara_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/repute_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/repute_align.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/repute_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/repute_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/repute_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/repute_ocl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
