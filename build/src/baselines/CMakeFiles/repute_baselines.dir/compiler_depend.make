# Empty compiler generated dependencies file for repute_baselines.
# This may be replaced when dependencies are built.
