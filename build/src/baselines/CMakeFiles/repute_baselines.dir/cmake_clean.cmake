file(REMOVE_RECURSE
  "CMakeFiles/repute_baselines.dir/bwamem_like.cpp.o"
  "CMakeFiles/repute_baselines.dir/bwamem_like.cpp.o.d"
  "CMakeFiles/repute_baselines.dir/gem_like.cpp.o"
  "CMakeFiles/repute_baselines.dir/gem_like.cpp.o.d"
  "CMakeFiles/repute_baselines.dir/hobbes3_like.cpp.o"
  "CMakeFiles/repute_baselines.dir/hobbes3_like.cpp.o.d"
  "CMakeFiles/repute_baselines.dir/qgram_index.cpp.o"
  "CMakeFiles/repute_baselines.dir/qgram_index.cpp.o.d"
  "CMakeFiles/repute_baselines.dir/razers3_like.cpp.o"
  "CMakeFiles/repute_baselines.dir/razers3_like.cpp.o.d"
  "CMakeFiles/repute_baselines.dir/single_device_mapper.cpp.o"
  "CMakeFiles/repute_baselines.dir/single_device_mapper.cpp.o.d"
  "CMakeFiles/repute_baselines.dir/verify_common.cpp.o"
  "CMakeFiles/repute_baselines.dir/verify_common.cpp.o.d"
  "CMakeFiles/repute_baselines.dir/yara_like.cpp.o"
  "CMakeFiles/repute_baselines.dir/yara_like.cpp.o.d"
  "librepute_baselines.a"
  "librepute_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
