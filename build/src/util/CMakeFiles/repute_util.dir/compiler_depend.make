# Empty compiler generated dependencies file for repute_util.
# This may be replaced when dependencies are built.
