file(REMOVE_RECURSE
  "librepute_util.a"
)
