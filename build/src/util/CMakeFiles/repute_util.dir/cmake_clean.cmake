file(REMOVE_RECURSE
  "CMakeFiles/repute_util.dir/args.cpp.o"
  "CMakeFiles/repute_util.dir/args.cpp.o.d"
  "CMakeFiles/repute_util.dir/bitvector.cpp.o"
  "CMakeFiles/repute_util.dir/bitvector.cpp.o.d"
  "CMakeFiles/repute_util.dir/logging.cpp.o"
  "CMakeFiles/repute_util.dir/logging.cpp.o.d"
  "CMakeFiles/repute_util.dir/packed_dna.cpp.o"
  "CMakeFiles/repute_util.dir/packed_dna.cpp.o.d"
  "CMakeFiles/repute_util.dir/prng.cpp.o"
  "CMakeFiles/repute_util.dir/prng.cpp.o.d"
  "CMakeFiles/repute_util.dir/stats.cpp.o"
  "CMakeFiles/repute_util.dir/stats.cpp.o.d"
  "CMakeFiles/repute_util.dir/threadpool.cpp.o"
  "CMakeFiles/repute_util.dir/threadpool.cpp.o.d"
  "librepute_util.a"
  "librepute_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
