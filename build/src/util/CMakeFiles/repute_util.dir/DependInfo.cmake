
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/args.cpp" "src/util/CMakeFiles/repute_util.dir/args.cpp.o" "gcc" "src/util/CMakeFiles/repute_util.dir/args.cpp.o.d"
  "/root/repo/src/util/bitvector.cpp" "src/util/CMakeFiles/repute_util.dir/bitvector.cpp.o" "gcc" "src/util/CMakeFiles/repute_util.dir/bitvector.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/util/CMakeFiles/repute_util.dir/logging.cpp.o" "gcc" "src/util/CMakeFiles/repute_util.dir/logging.cpp.o.d"
  "/root/repo/src/util/packed_dna.cpp" "src/util/CMakeFiles/repute_util.dir/packed_dna.cpp.o" "gcc" "src/util/CMakeFiles/repute_util.dir/packed_dna.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/util/CMakeFiles/repute_util.dir/prng.cpp.o" "gcc" "src/util/CMakeFiles/repute_util.dir/prng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/repute_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/repute_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/threadpool.cpp" "src/util/CMakeFiles/repute_util.dir/threadpool.cpp.o" "gcc" "src/util/CMakeFiles/repute_util.dir/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
