file(REMOVE_RECURSE
  "librepute_energy.a"
)
