file(REMOVE_RECURSE
  "CMakeFiles/repute_energy.dir/energy_meter.cpp.o"
  "CMakeFiles/repute_energy.dir/energy_meter.cpp.o.d"
  "librepute_energy.a"
  "librepute_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
