# Empty dependencies file for repute_energy.
# This may be replaced when dependencies are built.
