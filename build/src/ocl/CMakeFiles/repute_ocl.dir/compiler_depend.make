# Empty compiler generated dependencies file for repute_ocl.
# This may be replaced when dependencies are built.
