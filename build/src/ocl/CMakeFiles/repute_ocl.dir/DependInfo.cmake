
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocl/context.cpp" "src/ocl/CMakeFiles/repute_ocl.dir/context.cpp.o" "gcc" "src/ocl/CMakeFiles/repute_ocl.dir/context.cpp.o.d"
  "/root/repo/src/ocl/device.cpp" "src/ocl/CMakeFiles/repute_ocl.dir/device.cpp.o" "gcc" "src/ocl/CMakeFiles/repute_ocl.dir/device.cpp.o.d"
  "/root/repo/src/ocl/platform.cpp" "src/ocl/CMakeFiles/repute_ocl.dir/platform.cpp.o" "gcc" "src/ocl/CMakeFiles/repute_ocl.dir/platform.cpp.o.d"
  "/root/repo/src/ocl/queue.cpp" "src/ocl/CMakeFiles/repute_ocl.dir/queue.cpp.o" "gcc" "src/ocl/CMakeFiles/repute_ocl.dir/queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
