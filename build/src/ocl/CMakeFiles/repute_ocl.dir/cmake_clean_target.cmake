file(REMOVE_RECURSE
  "librepute_ocl.a"
)
