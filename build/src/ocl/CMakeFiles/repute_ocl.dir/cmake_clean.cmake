file(REMOVE_RECURSE
  "CMakeFiles/repute_ocl.dir/context.cpp.o"
  "CMakeFiles/repute_ocl.dir/context.cpp.o.d"
  "CMakeFiles/repute_ocl.dir/device.cpp.o"
  "CMakeFiles/repute_ocl.dir/device.cpp.o.d"
  "CMakeFiles/repute_ocl.dir/platform.cpp.o"
  "CMakeFiles/repute_ocl.dir/platform.cpp.o.d"
  "CMakeFiles/repute_ocl.dir/queue.cpp.o"
  "CMakeFiles/repute_ocl.dir/queue.cpp.o.d"
  "librepute_ocl.a"
  "librepute_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repute_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
